package dnn

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"origin/internal/tensor"
)

// numericalGrad estimates dL/dθ for a single parameter element by central
// differences, where L is the cross-entropy of the network on (x, label).
func numericalGrad(n *Network, x *tensor.Tensor, label int, p *tensor.Tensor, i int) float64 {
	const h = 1e-5
	d := p.Data()
	orig := d[i]
	d[i] = orig + h
	lossPlus, _ := CrossEntropyLoss(n.Forward(x), label)
	d[i] = orig - h
	lossMinus, _ := CrossEntropyLoss(n.Forward(x), label)
	d[i] = orig
	return (lossPlus - lossMinus) / (2 * h)
}

func buildTinyNet(t *testing.T) *Network {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	return NewHARNetwork(rng, HARConfig{
		Channels: 2, Window: 16, Classes: 3,
		Conv1Out: 3, Conv2Out: 4, Kernel: 3, Pool: 2, Hidden: 6,
	})
}

func TestGradientCheckWholeNetwork(t *testing.T) {
	n := buildTinyNet(t)
	rng := rand.New(rand.NewSource(8))
	x := tensor.New(2, 16)
	x.RandNormal(rng, 0, 1)
	label := 1

	n.ZeroGrads()
	logits := n.Forward(x)
	_, grad := CrossEntropyLoss(logits, label)
	n.Backward(grad)

	params := n.Params()
	grads := n.Grads()
	checked := 0
	for pi, p := range params {
		// Spot-check a handful of elements per parameter tensor.
		step := p.Len()/5 + 1
		for i := 0; i < p.Len(); i += step {
			want := numericalGrad(n, x, label, p, i)
			got := grads[pi].Data()[i]
			if math.Abs(want-got) > 1e-4*(1+math.Abs(want)) {
				t.Fatalf("param %d elem %d: analytic %v vs numeric %v", pi, i, got, want)
			}
			checked++
		}
	}
	if checked < 10 {
		t.Fatalf("only checked %d gradient elements", checked)
	}
}

func TestDenseForwardKnownValues(t *testing.T) {
	l := &Dense{In: 2, Out: 2,
		W:  tensor.FromSlice([]float64{1, 2, 3, 4}, 2, 2),
		B:  tensor.FromSlice([]float64{10, 20}, 2),
		dW: tensor.New(2, 2), dB: tensor.New(2),
	}
	y := l.Forward(tensor.FromSlice([]float64{1, 1}, 2))
	if y.At(0) != 13 || y.At(1) != 27 {
		t.Fatalf("Dense forward = %v, want [13 27]", y.Data())
	}
}

func TestConv1DForwardKnownValues(t *testing.T) {
	// 1 input channel, 1 output channel, kernel [1 0 -1], stride 1.
	l := &Conv1D{InC: 1, OutC: 1, Kernel: 3, Stride: 1,
		W:  tensor.FromSlice([]float64{1, 0, -1}, 1, 3),
		B:  tensor.FromSlice([]float64{0.5}, 1),
		dW: tensor.New(1, 3), dB: tensor.New(1),
	}
	x := tensor.FromSlice([]float64{1, 2, 4, 7, 11}, 1, 5)
	y := l.Forward(x)
	// y[t] = x[t] - x[t+2] + 0.5
	want := []float64{1 - 4 + 0.5, 2 - 7 + 0.5, 4 - 11 + 0.5}
	for i, v := range y.Data() {
		if v != want[i] {
			t.Fatalf("conv out[%d] = %v, want %v", i, v, want[i])
		}
	}
}

func TestMaxPoolForwardBackward(t *testing.T) {
	l := NewMaxPool1D(2)
	x := tensor.FromSlice([]float64{1, 5, 3, 2, 8, 6}, 1, 6)
	y := l.Forward(x)
	want := []float64{5, 3, 8}
	for i, v := range y.Data() {
		if v != want[i] {
			t.Fatalf("pool out[%d] = %v, want %v", i, v, want[i])
		}
	}
	g := tensor.FromSlice([]float64{1, 2, 3}, 1, 3)
	dx := l.Backward(g)
	wantDx := []float64{0, 1, 2, 0, 3, 0}
	for i, v := range dx.Data() {
		if v != wantDx[i] {
			t.Fatalf("pool dx[%d] = %v, want %v", i, v, wantDx[i])
		}
	}
}

func TestReLUForwardBackward(t *testing.T) {
	l := NewReLU()
	x := tensor.FromSlice([]float64{-1, 2, -3, 4}, 4)
	y := l.Forward(x)
	want := []float64{0, 2, 0, 4}
	for i, v := range y.Data() {
		if v != want[i] {
			t.Fatalf("relu out[%d] = %v, want %v", i, v, want[i])
		}
	}
	g := tensor.FromSlice([]float64{10, 10, 10, 10}, 4)
	dx := l.Backward(g)
	wantDx := []float64{0, 10, 0, 10}
	for i, v := range dx.Data() {
		if v != wantDx[i] {
			t.Fatalf("relu dx[%d] = %v, want %v", i, v, wantDx[i])
		}
	}
}

func TestFlattenRoundTrip(t *testing.T) {
	l := NewFlatten()
	x := tensor.FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	y := l.Forward(x)
	if y.Dims() != 1 || y.Len() != 6 {
		t.Fatalf("flatten shape = %v", y.Shape())
	}
	back := l.Backward(y)
	if back.Dims() != 2 || back.Dim(0) != 2 || back.Dim(1) != 3 {
		t.Fatalf("flatten backward shape = %v", back.Shape())
	}
}

func TestCrossEntropyLoss(t *testing.T) {
	logits := tensor.FromSlice([]float64{0, 0, 0}, 3)
	loss, grad := CrossEntropyLoss(logits, 1)
	if math.Abs(loss-math.Log(3)) > 1e-9 {
		t.Fatalf("uniform loss = %v, want ln(3)", loss)
	}
	// grad = p - onehot: [1/3, 1/3-1, 1/3]
	if math.Abs(grad.At(0)-1.0/3) > 1e-9 || math.Abs(grad.At(1)+2.0/3) > 1e-9 {
		t.Fatalf("grad = %v", grad.Data())
	}
	// Gradient sums to zero.
	if math.Abs(grad.Sum()) > 1e-12 {
		t.Fatalf("grad sum = %v, want 0", grad.Sum())
	}
}

// makeBlobs builds a linearly-separable synthetic dataset: class c has its
// channel means offset by c.
func makeBlobs(rng *rand.Rand, n, channels, window, classes int) []Sample {
	samples := make([]Sample, 0, n)
	for i := 0; i < n; i++ {
		label := i % classes
		x := tensor.New(channels, window)
		x.RandNormal(rng, float64(label)*1.5, 0.4)
		samples = append(samples, Sample{X: x, Label: label})
	}
	return samples
}

func TestTrainConvergesOnSeparableData(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	train := makeBlobs(rng, 120, 2, 16, 3)
	test := makeBlobs(rng, 60, 2, 16, 3)
	n := buildTinyNet(t)
	cfg := DefaultTrainConfig()
	cfg.Epochs = 15
	Train(n, train, cfg)
	acc := Evaluate(n, test)
	if acc < 0.9 {
		t.Fatalf("accuracy after training = %v, want >= 0.9", acc)
	}
}

func TestTrainDeterministic(t *testing.T) {
	rng1 := rand.New(rand.NewSource(10))
	rng2 := rand.New(rand.NewSource(10))
	cfgNet := HARConfig{Channels: 2, Window: 16, Classes: 3, Conv1Out: 3, Conv2Out: 4, Kernel: 3, Pool: 2, Hidden: 6}
	n1 := NewHARNetwork(rng1, cfgNet)
	n2 := NewHARNetwork(rng2, cfgNet)
	data := makeBlobs(rand.New(rand.NewSource(11)), 60, 2, 16, 3)
	cfg := DefaultTrainConfig()
	cfg.Epochs = 3
	Train(n1, data, cfg)
	Train(n2, data, cfg)
	p1, p2 := n1.Params(), n2.Params()
	for i := range p1 {
		if !p1[i].Equal(p2[i], 0) {
			t.Fatalf("training is not deterministic: param %d differs", i)
		}
	}
}

func TestEvaluatePerClass(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	train := makeBlobs(rng, 120, 2, 16, 3)
	n := buildTinyNet(t)
	cfg := DefaultTrainConfig()
	cfg.Epochs = 10
	Train(n, train, cfg)
	perClass, overall := EvaluatePerClass(n, train, 3)
	if len(perClass) != 3 {
		t.Fatalf("perClass length = %d", len(perClass))
	}
	sum := 0.0
	for _, a := range perClass {
		sum += a
	}
	if overall <= 0 || overall > 1 {
		t.Fatalf("overall = %v", overall)
	}
	// Balanced classes: mean of per-class accuracy equals overall.
	if math.Abs(sum/3-overall) > 1e-9 {
		t.Fatalf("per-class mean %v != overall %v for balanced data", sum/3, overall)
	}
}

func TestPruneToBudgetRespectsBudget(t *testing.T) {
	n := buildTinyNet(t)
	before := n.MACs()
	budget := before / 2
	res := PruneToBudget(n, budget)
	if res.MACsAfter > budget {
		t.Fatalf("MACs after prune = %d, budget %d", res.MACsAfter, budget)
	}
	if res.MACsBefore != before {
		t.Fatalf("MACsBefore = %d, want %d", res.MACsBefore, before)
	}
	if res.Sparsity <= 0 {
		t.Fatalf("sparsity = %v, want > 0", res.Sparsity)
	}
	if n.MACs() != res.MACsAfter {
		t.Fatalf("network MACs %d disagree with result %d", n.MACs(), res.MACsAfter)
	}
}

func TestPruneNoOpWhenUnderBudget(t *testing.T) {
	n := buildTinyNet(t)
	res := PruneToBudget(n, n.MACs()+1)
	if res.Sparsity != 0 || res.MACsAfter != res.MACsBefore {
		t.Fatalf("prune should be a no-op when under budget: %+v", res)
	}
}

func TestPruneKeepsAccuracyAfterFineTune(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	train := makeBlobs(rng, 150, 2, 16, 3)
	test := makeBlobs(rng, 60, 2, 16, 3)
	n := buildTinyNet(t)
	cfg := DefaultTrainConfig()
	cfg.Epochs = 15
	Train(n, train, cfg)
	PruneToFraction(n, 0.5)
	ft := cfg
	ft.Epochs = 8
	ft.LearningRate = 0.005
	FineTune(n, train, ft)
	// Pruned weights must stay exactly zero after fine-tuning.
	zeros := 0
	for _, p := range weightTensors(n) {
		for _, v := range p.Data() {
			if v == 0 {
				zeros++
			}
		}
	}
	if zeros == 0 {
		t.Fatal("fine-tuning resurrected all pruned weights")
	}
	acc := Evaluate(n, test)
	if acc < 0.8 {
		t.Fatalf("pruned+fine-tuned accuracy = %v, want >= 0.8", acc)
	}
}

func TestCloneIndependence(t *testing.T) {
	n := buildTinyNet(t)
	c := n.Clone()
	rng := rand.New(rand.NewSource(14))
	x := tensor.New(2, 16)
	x.RandNormal(rng, 0, 1)
	want := n.Forward(x)
	got := c.Forward(x)
	if !want.Equal(got, 1e-12) {
		t.Fatal("clone produces different output")
	}
	// Mutate the clone; the original must not change.
	c.Params()[0].Fill(0)
	after := n.Forward(x)
	if !want.Equal(after, 1e-12) {
		t.Fatal("mutating clone changed original network")
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	n := buildTinyNet(t)
	// Make weights distinctive.
	for _, p := range n.Params() {
		p.RandNormal(rng, 0, 1)
	}
	var buf bytes.Buffer
	if err := Save(&buf, n); err != nil {
		t.Fatalf("Save: %v", err)
	}
	m, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	x := tensor.New(2, 16)
	x.RandNormal(rng, 0, 1)
	want := n.Forward(x)
	got := m.Forward(x)
	if !want.Equal(got, 0) {
		t.Fatal("loaded network output differs from saved network")
	}
	if m.Classes != n.Classes || m.MACs() != n.MACs() {
		t.Fatalf("metadata mismatch: classes %d/%d macs %d/%d", m.Classes, n.Classes, m.MACs(), n.MACs())
	}
}

func TestLoadRejectsBadMagic(t *testing.T) {
	_, err := Load(bytes.NewBufferString("NOTMODEL and more bytes"))
	if err == nil {
		t.Fatal("Load accepted bad magic")
	}
}

func TestSaveFileLoadFile(t *testing.T) {
	n := buildTinyNet(t)
	path := t.TempDir() + "/model.bin"
	if err := SaveFile(path, n); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	m, err := LoadFile(path)
	if err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	if m.ParamCount() != n.ParamCount() {
		t.Fatalf("param count %d != %d", m.ParamCount(), n.ParamCount())
	}
}

func TestEnergyModel(t *testing.T) {
	n := buildTinyNet(t)
	m := DefaultEnergyModel()
	e := m.InferenceEnergy(n)
	if e <= m.BaselineOverhead {
		t.Fatalf("inference energy %v should exceed the fixed overhead", e)
	}
	before := e
	PruneToFraction(n, 0.3)
	after := m.InferenceEnergy(n)
	if after >= before {
		t.Fatalf("pruning should reduce inference energy: %v -> %v", before, after)
	}
}

func TestSummaryMentionsEveryLayer(t *testing.T) {
	n := buildTinyNet(t)
	s := n.Summary()
	for _, want := range []string{"conv1d", "relu", "maxpool", "flatten", "dense"} {
		if !bytes.Contains([]byte(s), []byte(want)) {
			t.Fatalf("summary missing %q:\n%s", want, s)
		}
	}
}

// prop: pruning to any fraction f in (0,1] never increases MACs and the
// result never exceeds ceil(f × original).
func TestPruneBudgetPropertyQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := NewHARNetwork(r, HARConfig{
			Channels: 2, Window: 16, Classes: 3,
			Conv1Out: 3, Conv2Out: 4, Kernel: 3, Pool: 2, Hidden: 6,
		})
		frac := 0.1 + 0.9*r.Float64()
		before := n.MACs()
		res := PruneToFraction(n, frac)
		budget := int(math.Ceil(float64(before) * frac))
		return res.MACsAfter <= budget && res.MACsAfter <= before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// prop: softmax probabilities from Predict always sum to 1 and the predicted
// class is a valid index.
func TestPredictIsDistributionQuick(t *testing.T) {
	n := buildTinyNet(t)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		x := tensor.New(2, 16)
		x.RandNormal(r, 0, 3)
		c, p := n.Predict(x)
		if c < 0 || c >= n.Classes {
			return false
		}
		return math.Abs(p.Sum()-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkForwardHARNet(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := NewHARNetwork(rng, DefaultHARConfig(6, 64, 6))
	x := tensor.New(6, 64)
	x.RandNormal(rng, 0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Forward(x)
	}
}

func BenchmarkTrainStep(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := NewHARNetwork(rng, DefaultHARConfig(6, 64, 6))
	x := tensor.New(6, 64)
	x.RandNormal(rng, 0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.ZeroGrads()
		logits := n.Forward(x)
		_, grad := CrossEntropyLoss(logits, i%6)
		n.Backward(grad)
	}
}

func TestTrainWithValidationEarlyStops(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	train := makeBlobs(rng, 120, 2, 16, 3)
	val := makeBlobs(rng, 45, 2, 16, 3)
	n := buildTinyNet(t)
	cfg := DefaultTrainConfig()
	cfg.Epochs = 60
	best, epochs := TrainWithValidation(n, train, val, cfg, 4)
	if epochs >= 60 {
		t.Fatalf("ran all %d epochs — early stopping never fired", epochs)
	}
	if best < 0.85 {
		t.Fatalf("best validation accuracy = %v", best)
	}
	// The restored weights actually achieve the reported accuracy.
	if got := Evaluate(n, val); got != best {
		t.Fatalf("restored accuracy %v != reported best %v", got, best)
	}
}

func TestTrainWithValidationRequiresVal(t *testing.T) {
	n := buildTinyNet(t)
	defer func() {
		if recover() == nil {
			t.Fatal("empty validation set did not panic")
		}
	}()
	TrainWithValidation(n, nil, nil, DefaultTrainConfig(), 3)
}

// prop: Load never panics on arbitrary bytes — it returns an error.
func TestLoadNeverPanicsQuick(t *testing.T) {
	f := func(data []byte) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		_, _ = Load(bytes.NewReader(data))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
	// Including a valid prefix followed by garbage.
	n := buildTinyNet(t)
	var buf bytes.Buffer
	if err := Save(&buf, n); err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < buf.Len(); cut += buf.Len() / 17 {
		if _, err := Load(bytes.NewReader(buf.Bytes()[:cut])); err == nil && cut < buf.Len()-1 {
			t.Fatalf("truncated model at %d bytes loaded without error", cut)
		}
	}
}

func TestConfusionCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	train := makeBlobs(rng, 120, 2, 16, 3)
	n := buildTinyNet(t)
	cfg := DefaultTrainConfig()
	cfg.Epochs = 12
	Train(n, train, cfg)
	counts := ConfusionCounts(n, train, 3)
	total, diag := 0, 0
	for i := range counts {
		for j, v := range counts[i] {
			total += v
			if i == j {
				diag += v
			}
		}
	}
	if total != len(train) {
		t.Fatalf("confusion total = %d, want %d", total, len(train))
	}
	if acc := float64(diag) / float64(total); math.Abs(acc-Evaluate(n, train)) > 1e-9 {
		t.Fatalf("confusion diagonal accuracy %v disagrees with Evaluate %v", acc, Evaluate(n, train))
	}
}

func TestCalibrateBasics(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	train := makeBlobs(rng, 150, 2, 16, 3)
	test := makeBlobs(rng, 90, 2, 16, 3)
	n := buildTinyNet(t)
	cfg := DefaultTrainConfig()
	cfg.Epochs = 15
	Train(n, train, cfg)
	rep := Calibrate(n, test, 5)
	if rep.ECE < 0 || rep.ECE > 1 {
		t.Fatalf("ECE = %v out of range", rep.ECE)
	}
	total := 0
	for b, c := range rep.BinCount {
		total += c
		if c > 0 {
			if rep.BinConfidence[b] < 0 || rep.BinConfidence[b] > 1 ||
				rep.BinAccuracy[b] < 0 || rep.BinAccuracy[b] > 1 {
				t.Fatalf("bin %d stats out of range: %+v", b, rep)
			}
		}
	}
	if total != len(test) {
		t.Fatalf("bins account for %d of %d predictions", total, len(test))
	}
}

func TestCalibrateLabelSmoothingSharpensConfidenceSignal(t *testing.T) {
	// The reproduction's own finding: label smoothing makes the
	// softmax-variance confidence measure *discriminative* — correct
	// predictions separate from wrong ones — which the Origin confidence
	// matrix depends on. Compare correct vs wrong mean variance on a noisy
	// (imperfectly separable) task.
	rng := rand.New(rand.NewSource(82))
	noisy := func(n int) []Sample {
		samples := make([]Sample, 0, n)
		for i := 0; i < n; i++ {
			label := i % 3
			x := tensor.New(2, 16)
			x.RandNormal(rng, float64(label)*0.9, 0.8)
			samples = append(samples, Sample{X: x, Label: label})
		}
		return samples
	}
	train, test := noisy(240), noisy(120)
	net := NewHARNetwork(rand.New(rand.NewSource(7)), HARConfig{
		Channels: 2, Window: 16, Classes: 3,
		Conv1Out: 3, Conv2Out: 4, Kernel: 3, Pool: 2, Hidden: 6,
	})
	cfg := DefaultTrainConfig()
	cfg.Epochs = 25
	cfg.LabelSmoothing = 0.1
	Train(net, train, cfg)
	var cSum, wSum float64
	var cN, wN int
	for _, s := range test {
		pred, probs := net.Predict(s.X)
		v := probs.Variance()
		if pred == s.Label {
			cSum += v
			cN++
		} else {
			wSum += v
			wN++
		}
	}
	if cN == 0 || wN == 0 {
		t.Skip("degenerate split")
	}
	ratio := (cSum / float64(cN)) / (wSum / float64(wN))
	if ratio < 1.05 {
		t.Fatalf("smoothed confidence ratio = %v, want correct clearly above wrong", ratio)
	}
}

func TestCalibrateValidation(t *testing.T) {
	n := buildTinyNet(t)
	defer func() {
		if recover() == nil {
			t.Fatal("Calibrate with 0 bins did not panic")
		}
	}()
	Calibrate(n, nil, 0)
}

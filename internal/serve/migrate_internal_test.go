package serve

import (
	"math"
	"reflect"
	"testing"

	"origin/internal/comm"
	"origin/internal/synth"
)

// lineageFixture builds a mid-round stream state: sensor 0 mid-window with a
// live ring, sensor 1 already in the round order, sensor 2 untouched.
func lineageFixture(t *testing.T) *streamState {
	t.Helper()
	asm := NewStreamAssembler(3, 8)
	mk := func(sensor, seq, n int, end bool) comm.IMUFrame {
		samples := make([][]float64, synth.Channels)
		for c := range samples {
			samples[c] = make([]float64, n)
			for i := range samples[c] {
				samples[c][i] = float64(sensor*100+seq*10+c) + float64(i)/3.0
			}
		}
		return comm.IMUFrame{Sensor: sensor, Seq: seq, EndRound: end, Samples: samples}
	}
	for _, f := range []comm.IMUFrame{mk(0, 0, 8, true), mk(0, 1, 3, false), mk(1, 0, 8, false)} {
		if _, err := asm.Ingest(f); err != nil {
			t.Fatalf("ingest: %v", err)
		}
	}
	asm.TakeRound() // close round 0 so the next frames opened round 1
	if _, err := asm.Ingest(mk(1, 1, 2, false)); err != nil {
		t.Fatal(err)
	}
	return &streamState{
		session: "s-1", token: "rt-9", asm: asm,
		lastSlot: 0, lastClass: 3, hasLast: true,
	}
}

func TestStreamAttachmentRoundTrip(t *testing.T) {
	st := lineageFixture(t)
	blob := encodeStreamAttachment(st)
	got, err := decodeStreamAttachment(blob, "s-1", 3, 8)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.token != st.token || got.lastSlot != st.lastSlot ||
		got.lastClass != st.lastClass || got.hasLast != st.hasLast {
		t.Fatalf("lineage header changed: %+v vs %+v", got, st)
	}
	if !reflect.DeepEqual(got.asm.NextSeqs(), st.asm.NextSeqs()) {
		t.Fatalf("seqs %v, want %v", got.asm.NextSeqs(), st.asm.NextSeqs())
	}
	if !reflect.DeepEqual(got.asm.round, st.asm.round) || !reflect.DeepEqual(got.asm.inRound, st.asm.inRound) {
		t.Fatalf("round order %v/%v, want %v/%v", got.asm.round, got.asm.inRound, st.asm.round, st.asm.inRound)
	}
	for i := range st.asm.sensors {
		a, b := &st.asm.sensors[i], &got.asm.sensors[i]
		if a.filled != b.filled {
			t.Fatalf("sensor %d filled %d, want %d", i, b.filled, a.filled)
		}
		if len(a.ring) != len(b.ring) {
			t.Fatalf("sensor %d ring len %d, want %d", i, len(b.ring), len(a.ring))
		}
		for j := range a.ring {
			if math.Float64bits(a.ring[j]) != math.Float64bits(b.ring[j]) {
				t.Fatalf("sensor %d ring[%d] lost bit-exactness", i, j)
			}
		}
	}
	// The restored assembler must CONTINUE identically: finish round 1 on
	// both and compare the assembled windows bit for bit.
	fin := comm.IMUFrame{Sensor: 0, Seq: 2, EndRound: true,
		Samples: func() [][]float64 {
			s := make([][]float64, synth.Channels)
			for c := range s {
				s[c] = []float64{1.5, 2.5}
			}
			return s
		}()}
	endA, errA := st.asm.Ingest(fin)
	endB, errB := got.asm.Ingest(fin)
	if errA != nil || errB != nil || !endA || !endB {
		t.Fatalf("continuation ingest: %v/%v end=%v/%v", errA, errB, endA, endB)
	}
	ra, rb := st.asm.TakeRound(), got.asm.TakeRound()
	if len(ra) != len(rb) {
		t.Fatalf("round sizes %d vs %d", len(ra), len(rb))
	}
	for i := range ra {
		if ra[i].Sensor != rb[i].Sensor {
			t.Fatalf("round order diverged at %d", i)
		}
		da, db := ra[i].Window.Data(), rb[i].Window.Data()
		for j := range da {
			if math.Float64bits(da[j]) != math.Float64bits(db[j]) {
				t.Fatalf("window %d sample %d diverged after restore", i, j)
			}
		}
	}
}

func TestStreamAttachmentRejectsDamage(t *testing.T) {
	good := encodeStreamAttachment(lineageFixture(t))
	cases := map[string]struct {
		blob            []byte
		sensors, window int
	}{
		"empty":           {nil, 3, 8},
		"bad magic":       {append([]byte("OSAX"), good[4:]...), 3, 8},
		"truncated":       {good[:len(good)-5], 3, 8},
		"trailing":        {append(append([]byte(nil), good...), 0), 3, 8},
		"wrong sensors":   {good, 4, 8},
		"wrong window":    {good, 3, 16},
		"version smashed": {append(append([]byte(nil), good[:4]...), append([]byte{0x7f}, good[5:]...)...), 3, 8},
	}
	for name, c := range cases {
		if _, err := decodeStreamAttachment(c.blob, "s-1", c.sensors, c.window); err == nil {
			t.Errorf("%s: decode accepted damaged attachment", name)
		}
	}
}

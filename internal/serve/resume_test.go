package serve_test

import (
	"bytes"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"origin/internal/comm"
	"origin/internal/fleet"
	"origin/internal/fleet/fleettest"
	"origin/internal/serve"
)

// Resume-boundary regression tests: the seams where a disconnect can land —
// mid-fill window rings, lost result pushes, duplicated end-of-round frames,
// sequence gaps after a resume — plus the parked-state lifecycle (TTL, cap,
// fresh-hello displacement).

// newResumeStack is newStreamStack with a configurable StreamConfig; it also
// returns the server so tests can watch the parked-state count.
func newResumeStack(t *testing.T, mutate func(*serve.StreamConfig)) (*streamStack, *serve.StreamServer) {
	t.Helper()
	mgr := fleet.NewManager(fleet.Config{Registry: fleettest.NewRegistry(), QueueDepth: 64, Workers: 2})
	metrics := &serve.Metrics{}
	cfg := serve.StreamConfig{
		Manager: mgr, Metrics: metrics,
		RoundTimeout: 30 * time.Second, IdleTimeout: 30 * time.Second,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	ss := serve.NewStreamServer(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = ss.Serve(ln) }()
	t.Cleanup(func() {
		ss.Close()
		mgr.Close()
	})
	return &streamStack{mgr: mgr, metrics: metrics, addr: ln.Addr().String()}, ss
}

// waitCounter polls an atomic metrics counter until it reaches want — the
// handler ingests and parks asynchronously relative to the client's writes.
func waitCounter(t *testing.T, load func() int64, want int64, what string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for load() < want {
		if time.Now().After(deadline) {
			t.Fatalf("%s = %d, want >= %d", what, load(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

// waitParked polls the server's parked-session gauge.
func waitParked(t *testing.T, ss *serve.StreamServer, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for ss.ParkedSessions() != want {
		if time.Now().After(deadline) {
			t.Fatalf("parked sessions = %d, want %d", ss.ParkedSessions(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

// fakeClock is an injectable resume-cache clock.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

// TestStreamResumeMidRound: the connection dies with a round half-reported
// (one sensor in, window rings mid-fill) and a hop frame already slid onto a
// parked ring. The resume must pick the round up exactly where it stopped.
func TestStreamResumeMidRound(t *testing.T) {
	s, ss := newResumeStack(t, nil)
	sess, err := s.mgr.Create("MHEALTH", 7, fleet.Opts{})
	if err != nil {
		t.Fatal(err)
	}
	window := sess.Model().Window
	conn, br, ack := s.dialAck(t, sess.ID())
	if ack.Resumed || ack.Token == "" {
		t.Fatalf("fresh ack: %+v", ack)
	}

	// Round 0 completes; round 1 opens with a hop frame (ring slides), then
	// the connection dies before the round ends.
	if _, err := conn.Write(imuFrame(t, 0, 0, window, true)); err != nil {
		t.Fatal(err)
	}
	res0 := readResult(t, br)
	if res0.Slot != 0 {
		t.Fatalf("slot %d", res0.Slot)
	}
	if _, err := conn.Write(imuFrame(t, 0, 1, 32, false)); err != nil {
		t.Fatal(err)
	}
	waitCounter(t, s.metrics.StreamFrames.Load, 2, "stream frames")
	conn.Close()
	waitParked(t, ss, 1)

	conn2, br2, ack2 := s.dialAck(t, sess.ID(), ack.Token)
	if !ack2.Resumed || ack2.Token != ack.Token {
		t.Fatalf("resume ack: %+v", ack2)
	}
	if ack2.NextSlot != 1 || !ack2.HasLast || ack2.LastClass != res0.Class {
		t.Fatalf("resume ack does not carry round 0: %+v (res0=%+v)", ack2, res0)
	}
	if len(ack2.NextSeqs) == 0 || ack2.NextSeqs[0] != 2 {
		t.Fatalf("resume ack seqs %v, want sensor 0 at 2 (hop frame survived the park)", ack2.NextSeqs)
	}
	// Finish round 1 from another sensor, then round 2 slides sensor 0's
	// parked ring again — if the ring state had been lost, this hop frame
	// would be rejected as a below-window first frame.
	if _, err := conn2.Write(imuFrame(t, 1, 0, window, true)); err != nil {
		t.Fatal(err)
	}
	if res := readResult(t, br2); res.Slot != 1 {
		t.Fatalf("resumed round answered slot %d, want 1", res.Slot)
	}
	if _, err := conn2.Write(imuFrame(t, 0, 2, 32, true)); err != nil {
		t.Fatal(err)
	}
	if res := readResult(t, br2); res.Slot != 2 {
		t.Fatalf("post-resume round answered slot %d, want 2", res.Slot)
	}
	if got := sess.Info().Slots; got != 3 {
		t.Fatalf("session served %d slots, want 3", got)
	}
	if s.metrics.StreamResumes.Load() != 1 || s.metrics.StreamParked.Load() != 1 {
		t.Fatalf("resume metrics: resumes=%d parked=%d",
			s.metrics.StreamResumes.Load(), s.metrics.StreamParked.Load())
	}
}

// TestStreamResumeDupEndOfRound: the canonical replay-dedup case — the
// client re-sends an already-classified end-of-round frame after a resume
// (it cannot know the result was pushed just before the cut). The dup must
// be absorbed, never double-classified.
func TestStreamResumeDupEndOfRound(t *testing.T) {
	s, ss := newResumeStack(t, nil)
	sess, err := s.mgr.Create("MHEALTH", 8, fleet.Opts{})
	if err != nil {
		t.Fatal(err)
	}
	window := sess.Model().Window
	conn, br, ack := s.dialAck(t, sess.ID())

	round0 := imuFrame(t, 0, 0, window, true)
	if _, err := conn.Write(round0); err != nil {
		t.Fatal(err)
	}
	res0 := readResult(t, br)
	conn.Close()
	waitParked(t, ss, 1)

	conn2, br2, ack2 := s.dialAck(t, sess.ID(), ack.Token)
	if ack2.NextSlot != 1 || !ack2.HasLast || ack2.LastClass != res0.Class {
		t.Fatalf("resume ack: %+v", ack2)
	}
	// Client re-sends the classified round verbatim, then the next round.
	if _, err := conn2.Write(round0); err != nil {
		t.Fatal(err)
	}
	if _, err := conn2.Write(imuFrame(t, 0, 1, 32, true)); err != nil {
		t.Fatal(err)
	}
	res := readResult(t, br2)
	if res.Slot != 1 {
		t.Fatalf("after resumed dup, result answers slot %d, want 1 (dup must not classify)", res.Slot)
	}
	if got := sess.Info().Slots; got != 2 {
		t.Fatalf("session served %d slots, want 2 — the re-sent round double-classified", got)
	}
}

// TestStreamResumeGapRejected: a sequence gap after a resume is still a
// protocol violation, and it tears the lineage — the state must not be
// parked again for another resume.
func TestStreamResumeGapRejected(t *testing.T) {
	s, ss := newResumeStack(t, nil)
	sess, err := s.mgr.Create("MHEALTH", 9, fleet.Opts{})
	if err != nil {
		t.Fatal(err)
	}
	window := sess.Model().Window
	conn, br, ack := s.dialAck(t, sess.ID())
	if _, err := conn.Write(imuFrame(t, 0, 0, window, true)); err != nil {
		t.Fatal(err)
	}
	readResult(t, br)
	conn.Close()
	waitParked(t, ss, 1)

	conn2, br2, _ := s.dialAck(t, sess.ID(), ack.Token)
	if _, err := conn2.Write(imuFrame(t, 0, 5, 32, true)); err != nil {
		t.Fatal(err)
	}
	readError(t, br2, comm.StreamErrProtocol)
	// The torn lineage is gone: the same token now misses.
	_, br3 := s.dial(t, sess.ID(), ack.Token)
	readError(t, br3, comm.StreamErrResume)
	if s.metrics.StreamResumeMisses.Load() != 1 {
		t.Fatalf("resume misses = %d, want 1", s.metrics.StreamResumeMisses.Load())
	}
}

// TestStreamResumeMiss: a token the server never issued (or has dropped) is
// rejected with the resume error code, never silently restarted.
func TestStreamResumeMiss(t *testing.T) {
	s, _ := newResumeStack(t, nil)
	sess, err := s.mgr.Create("MHEALTH", 10, fleet.Opts{})
	if err != nil {
		t.Fatal(err)
	}
	_, br := s.dial(t, sess.ID(), "rt-bogus")
	readError(t, br, comm.StreamErrResume)
	if s.metrics.StreamResumeMisses.Load() != 1 {
		t.Fatalf("resume misses = %d, want 1", s.metrics.StreamResumeMisses.Load())
	}
}

// TestStreamResumeFreshHelloDiscards: a fresh hello (no token) on a session
// with parked state starts a new lineage — the old token dies with it.
func TestStreamResumeFreshHelloDiscards(t *testing.T) {
	s, ss := newResumeStack(t, nil)
	sess, err := s.mgr.Create("MHEALTH", 11, fleet.Opts{})
	if err != nil {
		t.Fatal(err)
	}
	window := sess.Model().Window
	conn, br, ack := s.dialAck(t, sess.ID())
	if _, err := conn.Write(imuFrame(t, 0, 0, window, true)); err != nil {
		t.Fatal(err)
	}
	readResult(t, br)
	conn.Close()
	waitParked(t, ss, 1)

	_, _, ack2 := s.dialAck(t, sess.ID())
	if ack2.Resumed || ack2.Token == ack.Token {
		t.Fatalf("fresh hello resumed the old lineage: %+v", ack2)
	}
	// NextSlot reflects the session, not the lineage: rounds already
	// classified stay classified.
	if ack2.NextSlot != 1 {
		t.Fatalf("fresh ack NextSlot = %d, want 1", ack2.NextSlot)
	}
	_, br3 := s.dial(t, sess.ID(), ack.Token)
	readError(t, br3, comm.StreamErrResume)
}

// TestStreamResumeTTLExpiry: parked state outliving the TTL is dropped, and
// a later resume misses. The cache clock is injected so no test sleeps.
func TestStreamResumeTTLExpiry(t *testing.T) {
	clock := &fakeClock{t: time.Unix(1_700_000_000, 0)}
	s, ss := newResumeStack(t, func(cfg *serve.StreamConfig) {
		cfg.ResumeTTL = time.Minute
		cfg.Now = clock.now
	})
	sess, err := s.mgr.Create("MHEALTH", 12, fleet.Opts{})
	if err != nil {
		t.Fatal(err)
	}
	window := sess.Model().Window
	conn, br, ack := s.dialAck(t, sess.ID())
	if _, err := conn.Write(imuFrame(t, 0, 0, window, true)); err != nil {
		t.Fatal(err)
	}
	readResult(t, br)
	conn.Close()
	waitParked(t, ss, 1)

	clock.advance(2 * time.Minute)
	if got := ss.ParkedSessions(); got != 0 {
		t.Fatalf("parked sessions after TTL = %d, want 0", got)
	}
	_, br2 := s.dial(t, sess.ID(), ack.Token)
	readError(t, br2, comm.StreamErrResume)
	if s.metrics.StreamExpired.Load() != 1 {
		t.Fatalf("expired counter = %d, want 1", s.metrics.StreamExpired.Load())
	}
}

// TestStreamResumeCapEviction: the parked-state cache is bounded; past the
// cap the oldest parked lineage is dropped first.
func TestStreamResumeCapEviction(t *testing.T) {
	s, ss := newResumeStack(t, func(cfg *serve.StreamConfig) {
		cfg.ResumeCap = 1
	})
	// Waiting on the cumulative park counter (not the parked gauge, which
	// stays at 1 across the eviction) pins each disconnect's park.
	park := func(user, wantParks int64) (string, string) { // returns session id, token
		sess, err := s.mgr.Create("MHEALTH", user, fleet.Opts{})
		if err != nil {
			t.Fatal(err)
		}
		conn, br, ack := s.dialAck(t, sess.ID())
		if _, err := conn.Write(imuFrame(t, 0, 0, sess.Model().Window, true)); err != nil {
			t.Fatal(err)
		}
		readResult(t, br)
		conn.Close()
		waitCounter(t, s.metrics.StreamParked.Load, wantParks, "parked total")
		return sess.ID(), ack.Token
	}
	idA, tokenA := park(20, 1)
	idB, tokenB := park(21, 2) // cap 1: parking B evicts A
	waitParked(t, ss, 1)

	_, brA := s.dial(t, idA, tokenA)
	readError(t, brA, comm.StreamErrResume)
	_, _, ackB := s.dialAck(t, idB, tokenB)
	if !ackB.Resumed {
		t.Fatalf("newest parked state evicted: %+v", ackB)
	}
	if s.metrics.StreamExpired.Load() != 1 {
		t.Fatalf("expired counter = %d, want 1", s.metrics.StreamExpired.Load())
	}
}

// TestStreamResumeDisabled: a negative TTL turns the feature off —
// disconnects discard state and tokens never match, like the pre-resume
// server.
func TestStreamResumeDisabled(t *testing.T) {
	s, ss := newResumeStack(t, func(cfg *serve.StreamConfig) {
		cfg.ResumeTTL = -1
	})
	sess, err := s.mgr.Create("MHEALTH", 13, fleet.Opts{})
	if err != nil {
		t.Fatal(err)
	}
	window := sess.Model().Window
	conn, br, ack := s.dialAck(t, sess.ID())
	if _, err := conn.Write(imuFrame(t, 0, 0, window, true)); err != nil {
		t.Fatal(err)
	}
	readResult(t, br)
	conn.Close()
	// No parking with resume disabled: whether the handler has released yet
	// or not, the token must miss (attach kicks a still-live owner first).
	if got := ss.ParkedSessions(); got != 0 {
		t.Fatalf("parked sessions = %d with resume disabled", got)
	}
	_, br2 := s.dial(t, sess.ID(), ack.Token)
	readError(t, br2, comm.StreamErrResume)
	if s.metrics.StreamParked.Load() != 0 {
		t.Fatalf("parked counter = %d with resume disabled", s.metrics.StreamParked.Load())
	}
}

// TestStreamResultBatching: results for rounds whose frames arrived in one
// burst coalesce into fewer downlink writes.
func TestStreamResultBatching(t *testing.T) {
	s, _ := newResumeStack(t, nil)
	sess, err := s.mgr.Create("MHEALTH", 14, fleet.Opts{})
	if err != nil {
		t.Fatal(err)
	}
	window := sess.Model().Window
	conn, br, _ := s.dialAck(t, sess.ID())

	var burst bytes.Buffer
	burst.Write(imuFrame(t, 0, 0, window, true))
	burst.Write(imuFrame(t, 0, 1, 32, true))
	burst.Write(imuFrame(t, 0, 2, 32, true))
	if _, err := conn.Write(burst.Bytes()); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 3; k++ {
		if res := readResult(t, br); res.Slot != k {
			t.Fatalf("burst round %d answered slot %d", k, res.Slot)
		}
	}
	flushes := s.metrics.StreamResultFlushes.Load()
	if flushes < 1 || flushes >= 3 {
		t.Fatalf("3 burst rounds took %d result flushes, want coalescing (1-2)", flushes)
	}
}

// TestStreamServerHeartbeats: an idle connection receives server heartbeats
// at IdleTimeout/3, so a live-but-quiet peer can tell the link is up.
func TestStreamServerHeartbeats(t *testing.T) {
	s, _ := newResumeStack(t, func(cfg *serve.StreamConfig) {
		cfg.IdleTimeout = 600 * time.Millisecond
	})
	sess, err := s.mgr.Create("MHEALTH", 15, fleet.Opts{})
	if err != nil {
		t.Fatal(err)
	}
	conn, br, _ := s.dialAck(t, sess.ID())
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	f, err := comm.ReadFrame(br)
	if err != nil {
		t.Fatalf("read heartbeat: %v", err)
	}
	if f.Type != comm.FrameHeartbeat {
		t.Fatalf("idle connection pushed frame type %d, want heartbeat", f.Type)
	}
	if s.metrics.StreamHeartbeats.Load() < 1 {
		t.Fatalf("heartbeat counter = %d", s.metrics.StreamHeartbeats.Load())
	}
}

// TestStreamRejectSanitizesSessionID: a hostile session id full of control
// bytes must reach the error frame (and any log line) neutered — length
// capped, control characters mapped out.
func TestStreamRejectSanitizesSessionID(t *testing.T) {
	s, _ := newResumeStack(t, nil)
	evil := strings.Repeat("x", 40) + "\n\x1b[2Jrm -rf\x00" + strings.Repeat("y", 120)
	_, br := s.dial(t, evil)
	f, err := comm.ReadFrame(br)
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != comm.FrameError {
		t.Fatalf("frame type %d, want error", f.Type)
	}
	se, err := comm.DecodeStreamError(f.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if se.Code != comm.StreamErrSession {
		t.Fatalf("code %d, want session error", se.Code)
	}
	for _, c := range []byte(se.Msg) {
		if c < 0x20 || c > 0x7e {
			t.Fatalf("error message carries raw control byte %#x: %q", c, se.Msg)
		}
	}
	if len(se.Msg) > 120 {
		t.Fatalf("error message %d bytes — session id not truncated: %q", len(se.Msg), se.Msg)
	}
}

package serve_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"origin/internal/fleet"
	"origin/internal/fleet/fleettest"
	"origin/internal/serve"
)

func newServer(t *testing.T) *httptest.Server {
	t.Helper()
	mgr := fleet.NewManager(fleet.Config{Registry: fleettest.NewRegistry()})
	ts := httptest.NewServer(serve.New(serve.Config{Manager: mgr}))
	t.Cleanup(func() {
		ts.Close()
		mgr.Close()
	})
	return ts
}

func post(t *testing.T, url string, in, out any) int {
	t.Helper()
	body, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

// TestSessionLifecycle walks the whole API surface: create, inspect,
// classify, delete, and the 404 after deletion.
func TestSessionLifecycle(t *testing.T) {
	ts := newServer(t)

	var created serve.CreateSessionResponse
	status := post(t, ts.URL+"/v1/sessions", serve.CreateSessionRequest{Profile: "MHEALTH", User: 42}, &created)
	if status != http.StatusCreated {
		t.Fatalf("create: status %d", status)
	}
	if created.ID == "" || created.Sensors <= 0 || created.Classes <= 0 || created.Window <= 0 {
		t.Fatalf("create response incomplete: %+v", created)
	}
	if len(created.Activities) != created.Classes {
		t.Fatalf("create: %d activities for %d classes", len(created.Activities), created.Classes)
	}

	var res serve.ClassifyResponse
	status = post(t, ts.URL+"/v1/sessions/"+created.ID+"/classify",
		serve.ClassifyRequest{Votes: []serve.Vote{{Sensor: 0, Class: 1, Confidence: 0.03}}}, &res)
	if status != http.StatusOK {
		t.Fatalf("classify: status %d", status)
	}
	if res.Slot != 0 || res.Class < 0 || res.Activity == "" || len(res.Votes) != 1 {
		t.Fatalf("classify response: %+v", res)
	}

	resp, err := http.Get(ts.URL + "/v1/sessions/" + created.ID)
	if err != nil {
		t.Fatal(err)
	}
	var info serve.SessionResponse
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || info.ID != created.ID || info.User != 42 || info.Slots != 1 {
		t.Fatalf("get: status %d info %+v", resp.StatusCode, info)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sessions/"+created.ID, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: status %d", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/v1/sessions/" + created.ID)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("get after delete: status %d, want 404", resp.StatusCode)
	}
}

func TestBadRequests(t *testing.T) {
	ts := newServer(t)
	var created serve.CreateSessionResponse
	post(t, ts.URL+"/v1/sessions", serve.CreateSessionRequest{Profile: "MHEALTH"}, &created)

	cases := []struct {
		name   string
		url    string
		body   string
		status int
	}{
		{"unknown profile", "/v1/sessions", `{"profile":"WISDM"}`, http.StatusBadRequest},
		{"malformed create", "/v1/sessions", `{"profile":`, http.StatusBadRequest},
		{"bad quorum", "/v1/sessions", `{"profile":"MHEALTH","quorum":99}`, http.StatusBadRequest},
		{"bad sensor", "/v1/sessions/" + created.ID + "/classify", `{"votes":[{"sensor":9,"class":0,"confidence":0.1}]}`, http.StatusBadRequest},
		{"ragged window", "/v1/sessions/" + created.ID + "/classify", `{"windows":[{"sensor":0,"samples":[[1,2],[3]]}]}`, http.StatusBadRequest},
		{"classify missing session", "/v1/sessions/nope/classify", `{}`, http.StatusNotFound},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+tc.url, "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.status)
		}
	}
}

// prop: /metrics speaks Prometheus text format and carries both the
// device-level telemetry and the serving counters the ISSUE names.
func TestMetricsEndpoint(t *testing.T) {
	ts := newServer(t)
	var created serve.CreateSessionResponse
	post(t, ts.URL+"/v1/sessions", serve.CreateSessionRequest{Profile: "MHEALTH"}, &created)
	for i := 0; i < 3; i++ {
		post(t, ts.URL+"/v1/sessions/"+created.ID+"/classify",
			serve.ClassifyRequest{Votes: []serve.Vote{{Sensor: i % 3, Class: 0, Confidence: 0.02}}}, nil)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("metrics content type %q, want text exposition 0.0.4", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	text := string(body)
	for _, want := range []string{
		"origin_fresh_votes_total 3",
		"origin_slots_total 3",
		"origin_serve_sessions_active 1",
		"origin_serve_sessions_created_total 1",
		"origin_serve_sessions_evicted_total 0",
		"origin_serve_requests_accepted_total 3",
		"origin_serve_requests_shed_total 0",
		"origin_serve_requests_done_total 3",
		"origin_serve_queue_depth 0",
		"# TYPE origin_serve_sessions_active gauge",
		"# TYPE origin_serve_requests_accepted_total counter",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func TestHealthz(t *testing.T) {
	ts := newServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: status %d", resp.StatusCode)
	}
}

// prop: oversized bodies are rejected, not buffered without bound.
func TestBodyLimit(t *testing.T) {
	mgr := fleet.NewManager(fleet.Config{Registry: fleettest.NewRegistry()})
	ts := httptest.NewServer(serve.New(serve.Config{Manager: mgr, MaxBodyBytes: 256}))
	t.Cleanup(func() { ts.Close(); mgr.Close() })

	huge := `{"profile":"MHEALTH","pad":"` + strings.Repeat("x", 1024) + `"}`
	resp, err := http.Post(ts.URL+"/v1/sessions", "application/json", strings.NewReader(huge))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized body: status %d, want 400", resp.StatusCode)
	}
}

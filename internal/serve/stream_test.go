package serve_test

import (
	"bufio"
	"io"
	"net"
	"testing"
	"time"

	"origin/internal/comm"
	"origin/internal/fleet"
	"origin/internal/fleet/fleettest"
	"origin/internal/serve"
	"origin/internal/synth"
)

// streamStack is a full stream-serving fixture over tiny deterministic
// models: manager, stream front on a loopback listener, shared metrics.
type streamStack struct {
	mgr     *fleet.Manager
	metrics *serve.Metrics
	addr    string
}

func newStreamStack(t *testing.T) *streamStack {
	t.Helper()
	mgr := fleet.NewManager(fleet.Config{Registry: fleettest.NewRegistry(), QueueDepth: 64, Workers: 2})
	metrics := &serve.Metrics{}
	ss := serve.NewStreamServer(serve.StreamConfig{
		Manager: mgr, Metrics: metrics,
		RoundTimeout: 30 * time.Second, IdleTimeout: 30 * time.Second,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = ss.Serve(ln) }()
	t.Cleanup(func() {
		ss.Close()
		mgr.Close()
	})
	return &streamStack{mgr: mgr, metrics: metrics, addr: ln.Addr().String()}
}

// dial opens a stream connection and sends the preamble + hello for the
// given session (optionally with a resume token), without reading the
// server's answer — reject tests want to see the raw error frame.
func (s *streamStack) dial(t *testing.T, session string, token ...string) (net.Conn, *bufio.Reader) {
	t.Helper()
	conn, err := net.DialTimeout("tcp", s.addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	h := comm.Hello{Version: comm.StreamVersion, Session: session}
	if len(token) > 0 {
		h.Token = token[0]
	}
	hello, err := comm.EncodeHello(append([]byte(nil), comm.StreamMagic[:]...), h)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(hello); err != nil {
		t.Fatal(err)
	}
	return conn, bufio.NewReader(conn)
}

// readAck reads one frame and requires it to be a hello-ack.
func readAck(t *testing.T, br *bufio.Reader) comm.HelloAck {
	t.Helper()
	f, err := comm.ReadFrame(br)
	if err != nil {
		t.Fatalf("read hello-ack: %v", err)
	}
	if f.Type == comm.FrameError {
		se, _ := comm.DecodeStreamError(f.Payload)
		t.Fatalf("server rejected hello: %+v", se)
	}
	if f.Type != comm.FrameHelloAck {
		t.Fatalf("frame type %d, want hello-ack", f.Type)
	}
	ack, err := comm.DecodeHelloAck(f.Payload)
	if err != nil {
		t.Fatal(err)
	}
	return ack
}

// dialAck dials and completes the hello/hello-ack handshake.
func (s *streamStack) dialAck(t *testing.T, session string, token ...string) (net.Conn, *bufio.Reader, comm.HelloAck) {
	t.Helper()
	conn, br := s.dial(t, session, token...)
	return conn, br, readAck(t, br)
}

// testSamples builds a deterministic channel-major sample batch.
func testSamples(n int, phase float64) [][]float64 {
	rows := make([][]float64, synth.Channels)
	for c := range rows {
		rows[c] = make([]float64, n)
		for t := range rows[c] {
			rows[c][t] = float64(c+1) + 0.25*float64(t) + phase
		}
	}
	return rows
}

// imuFrame encodes one IMU frame with deterministic samples.
func imuFrame(t *testing.T, sensor, seq, n int, end bool) []byte {
	t.Helper()
	b, err := comm.EncodeIMU(nil, comm.IMUFrame{
		Sensor: sensor, Seq: seq, EndRound: end,
		Samples: testSamples(n, float64(seq)*10),
	})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// readResult reads one frame and requires it to be a result push.
func readResult(t *testing.T, br *bufio.Reader) comm.StreamResult {
	t.Helper()
	f, err := comm.ReadFrame(br)
	if err != nil {
		t.Fatalf("read result: %v", err)
	}
	if f.Type == comm.FrameError {
		se, _ := comm.DecodeStreamError(f.Payload)
		t.Fatalf("server rejected: %+v", se)
	}
	if f.Type != comm.FrameResult {
		t.Fatalf("frame type %d, want result", f.Type)
	}
	res, err := comm.DecodeStreamResult(f.Payload)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// readError reads one frame and requires it to be an error push with the
// given code, followed by connection close.
func readError(t *testing.T, br *bufio.Reader, code int) {
	t.Helper()
	f, err := comm.ReadFrame(br)
	if err != nil {
		t.Fatalf("read error frame: %v", err)
	}
	if f.Type != comm.FrameError {
		t.Fatalf("frame type %d, want error", f.Type)
	}
	se, err := comm.DecodeStreamError(f.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if se.Code != code {
		t.Fatalf("error code %d (%s), want %d", se.Code, se.Msg, code)
	}
	if _, err := comm.ReadFrame(br); err != io.EOF && err != io.ErrUnexpectedEOF {
		t.Fatalf("connection not closed after error: %v", err)
	}
}

func TestStreamEndToEnd(t *testing.T) {
	s := newStreamStack(t)
	sess, err := s.mgr.Create("MHEALTH", 7, fleet.Opts{})
	if err != nil {
		t.Fatal(err)
	}
	window := sess.Model().Window
	conn, br, ack := s.dialAck(t, sess.ID())
	if ack.Resumed || ack.Token == "" || ack.NextSlot != 0 || ack.HasLast {
		t.Fatalf("fresh hello-ack = %+v", ack)
	}

	// Round 0 primes the window; rounds 1..3 ship hop-sized deltas.
	if _, err := conn.Write(imuFrame(t, 0, 0, window, true)); err != nil {
		t.Fatal(err)
	}
	if res := readResult(t, br); res.Slot != 0 {
		t.Fatalf("round 0 answered slot %d", res.Slot)
	}
	for k := 1; k <= 3; k++ {
		if _, err := conn.Write(imuFrame(t, 0, k, 32, true)); err != nil {
			t.Fatal(err)
		}
		res := readResult(t, br)
		if res.Slot != k {
			t.Fatalf("round %d answered slot %d", k, res.Slot)
		}
		if res.Class < -1 || res.Class >= sess.Model().Classes() {
			t.Fatalf("round %d class %d out of range", k, res.Class)
		}
	}
	if got := sess.Info().Slots; got != 4 {
		t.Fatalf("session served %d slots, want 4", got)
	}
	if s.metrics.StreamRounds.Load() != 4 || s.metrics.StreamConns.Load() != 1 {
		t.Fatalf("metrics rounds=%d conns=%d", s.metrics.StreamRounds.Load(), s.metrics.StreamConns.Load())
	}
	if s.metrics.ParseRounds.Load() != 4 || s.metrics.ParseNanos.Load() <= 0 {
		t.Fatalf("parse counters rounds=%d nanos=%d", s.metrics.ParseRounds.Load(), s.metrics.ParseNanos.Load())
	}
}

// TestStreamMultiSensorRound: several sensors feed one round; only the
// end-of-round frame triggers classification, and the round carries every
// reporting sensor.
func TestStreamMultiSensorRound(t *testing.T) {
	s := newStreamStack(t)
	sess, err := s.mgr.Create("MHEALTH", 8, fleet.Opts{})
	if err != nil {
		t.Fatal(err)
	}
	window := sess.Model().Window
	conn, br, _ := s.dialAck(t, sess.ID())
	for sensor := 0; sensor < 3; sensor++ {
		if _, err := conn.Write(imuFrame(t, sensor, 0, window, sensor == 2)); err != nil {
			t.Fatal(err)
		}
	}
	if res := readResult(t, br); res.Slot != 0 {
		t.Fatalf("slot %d", res.Slot)
	}
	if got := sess.Info().Slots; got != 1 {
		t.Fatalf("three sensor frames classified %d rounds, want 1", got)
	}
}

// TestStreamDuplicateNeverDoubleClassifies: a re-delivered end-of-round
// frame must not classify a second time — the radio-level dup is absorbed by
// the per-sensor sequence discipline.
func TestStreamDuplicateNeverDoubleClassifies(t *testing.T) {
	s := newStreamStack(t)
	sess, err := s.mgr.Create("MHEALTH", 9, fleet.Opts{})
	if err != nil {
		t.Fatal(err)
	}
	window := sess.Model().Window
	conn, br, _ := s.dialAck(t, sess.ID())

	first := imuFrame(t, 0, 0, window, true)
	if _, err := conn.Write(first); err != nil {
		t.Fatal(err)
	}
	if res := readResult(t, br); res.Slot != 0 {
		t.Fatalf("slot %d", res.Slot)
	}
	// Radio retransmit: the same bytes arrive again, then the next round.
	if _, err := conn.Write(first); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(imuFrame(t, 0, 1, 32, true)); err != nil {
		t.Fatal(err)
	}
	res := readResult(t, br)
	if res.Slot != 1 {
		t.Fatalf("after dup, result answers slot %d, want 1 (dup must not classify)", res.Slot)
	}
	if got := sess.Info().Slots; got != 2 {
		t.Fatalf("session served %d slots, want 2", got)
	}
}

func TestStreamRejects(t *testing.T) {
	s := newStreamStack(t)
	sess, err := s.mgr.Create("MHEALTH", 10, fleet.Opts{})
	if err != nil {
		t.Fatal(err)
	}
	window := sess.Model().Window

	t.Run("bad preamble", func(t *testing.T) {
		conn, err := net.DialTimeout("tcp", s.addr, 5*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		if _, err := conn.Write([]byte("GET / HT")); err != nil {
			t.Fatal(err)
		}
		readError(t, bufio.NewReader(conn), comm.StreamErrProtocol)
	})
	t.Run("unknown session", func(t *testing.T) {
		_, br := s.dial(t, "no-such-session")
		readError(t, br, comm.StreamErrSession)
	})
	t.Run("seq gap", func(t *testing.T) {
		conn, br, _ := s.dialAck(t, sess.ID())
		if _, err := conn.Write(imuFrame(t, 0, 1, window, true)); err != nil {
			t.Fatal(err)
		}
		readError(t, br, comm.StreamErrProtocol)
	})
	t.Run("first frame below window", func(t *testing.T) {
		conn, br, _ := s.dialAck(t, sess.ID())
		if _, err := conn.Write(imuFrame(t, 1, 0, window/2, true)); err != nil {
			t.Fatal(err)
		}
		readError(t, br, comm.StreamErrProtocol)
	})
	t.Run("unknown sensor", func(t *testing.T) {
		conn, br, _ := s.dialAck(t, sess.ID())
		if _, err := conn.Write(imuFrame(t, 250, 0, window, true)); err != nil {
			t.Fatal(err)
		}
		readError(t, br, comm.StreamErrProtocol)
	})
	t.Run("corrupt frame", func(t *testing.T) {
		conn, br, _ := s.dialAck(t, sess.ID())
		frame := imuFrame(t, 0, 0, window, true)
		comm.FlipBit(frame, 40)
		if _, err := conn.Write(frame); err != nil {
			t.Fatal(err)
		}
		readError(t, br, comm.StreamErrProtocol)
	})
	t.Run("unexpected frame type", func(t *testing.T) {
		conn, br, _ := s.dialAck(t, sess.ID())
		res, err := comm.EncodeStreamResult(nil, comm.StreamResult{Slot: 0, Class: 1})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := conn.Write(res); err != nil {
			t.Fatal(err)
		}
		readError(t, br, comm.StreamErrProtocol)
	})
	if rejects := s.metrics.StreamRejects.Load(); rejects < 7 {
		t.Fatalf("rejects counter %d, want >= 7", rejects)
	}
}

// TestStreamHeartbeatIgnored: heartbeats keep the connection alive without
// touching round state.
func TestStreamHeartbeatIgnored(t *testing.T) {
	s := newStreamStack(t)
	sess, err := s.mgr.Create("MHEALTH", 11, fleet.Opts{})
	if err != nil {
		t.Fatal(err)
	}
	conn, br, _ := s.dialAck(t, sess.ID())
	hb, err := comm.EncodeHeartbeat(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(hb); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(imuFrame(t, 0, 0, sess.Model().Window, true)); err != nil {
		t.Fatal(err)
	}
	if res := readResult(t, br); res.Slot != 0 {
		t.Fatalf("slot %d", res.Slot)
	}
}

// --- StreamAssembler unit tests -----------------------------------------

func ingestFrame(t *testing.T, a *serve.StreamAssembler, sensor, seq, n int, end bool, phase float64) bool {
	t.Helper()
	// Round-trip through the codec so the assembler sees wire-derived
	// floats, exactly as the server does.
	b, err := comm.EncodeIMU(nil, comm.IMUFrame{
		Sensor: sensor, Seq: seq, EndRound: end, Samples: testSamples(n, phase),
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := comm.DecodeFrameBytes(b)
	if err != nil {
		t.Fatal(err)
	}
	imu, err := comm.DecodeIMU(f.Payload)
	if err != nil {
		t.Fatal(err)
	}
	endRound, err := a.Ingest(imu)
	if err != nil {
		t.Fatalf("ingest sensor %d seq %d: %v", sensor, seq, err)
	}
	return endRound
}

func TestAssemblerSlidingWindow(t *testing.T) {
	const window = 8
	a := serve.NewStreamAssembler(1, window)

	// Prime with a full window, then slide by 3.
	full := comm.IMUFrame{Sensor: 0, Seq: 0, EndRound: true, Samples: make([][]float64, synth.Channels)}
	hop := comm.IMUFrame{Sensor: 0, Seq: 1, EndRound: true, Samples: make([][]float64, synth.Channels)}
	for c := 0; c < synth.Channels; c++ {
		full.Samples[c] = make([]float64, window)
		for i := range full.Samples[c] {
			full.Samples[c][i] = float64(i) // 0..7
		}
		hop.Samples[c] = []float64{100, 101, 102}
	}
	if end, err := a.Ingest(full); err != nil || !end {
		t.Fatalf("prime: end=%v err=%v", end, err)
	}
	a.TakeRound()
	if end, err := a.Ingest(hop); err != nil || !end {
		t.Fatalf("hop: end=%v err=%v", end, err)
	}
	inputs := a.TakeRound()
	if len(inputs) != 1 || inputs[0].Sensor != 0 {
		t.Fatalf("round inputs: %+v", inputs)
	}
	got := inputs[0].Window.Data()[:window] // channel 0
	want := []float64{3, 4, 5, 6, 7, 100, 101, 102}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("slid window[%d] = %v, want %v (full: %v)", i, got[i], want[i], got)
		}
	}
}

func TestAssemblerOversizedFrameKeepsTail(t *testing.T) {
	const window = 4
	a := serve.NewStreamAssembler(1, window)
	f := comm.IMUFrame{Sensor: 0, Seq: 0, EndRound: true, Samples: make([][]float64, synth.Channels)}
	for c := 0; c < synth.Channels; c++ {
		f.Samples[c] = []float64{1, 2, 3, 4, 5, 6}
	}
	if _, err := a.Ingest(f); err != nil {
		t.Fatal(err)
	}
	got := a.TakeRound()[0].Window.Data()[:window]
	want := []float64{3, 4, 5, 6}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("tail window[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestAssemblerDupAndGap(t *testing.T) {
	const window = 8
	a := serve.NewStreamAssembler(2, window)
	if end := ingestFrame(t, a, 0, 0, window, true, 0); !end {
		t.Fatal("prime frame did not end round")
	}
	a.TakeRound()
	// Duplicate (seq 0 again): silently dropped, end-of-round flag included.
	b, err := comm.EncodeIMU(nil, comm.IMUFrame{Sensor: 0, Seq: 0, EndRound: true, Samples: testSamples(window, 0)})
	if err != nil {
		t.Fatal(err)
	}
	f, _ := comm.DecodeFrameBytes(b)
	imu, _ := comm.DecodeIMU(f.Payload)
	if end, err := a.Ingest(imu); err != nil || end {
		t.Fatalf("dup: end=%v err=%v, want silent drop", end, err)
	}
	// Gap (seq 2 when 1 is expected): hard error.
	imu.Seq = 2
	if _, err := a.Ingest(imu); err == nil {
		t.Fatal("gap accepted")
	}
	// Unknown sensor: hard error.
	imu.Sensor = 5
	imu.Seq = 0
	if _, err := a.Ingest(imu); err == nil {
		t.Fatal("unknown sensor accepted")
	}
}

func TestAssemblerRoundOrderAndCopy(t *testing.T) {
	const window = 4
	a := serve.NewStreamAssembler(3, window)
	// Sensors report 2, then 0 — TakeRound must preserve first-report order.
	ingestFrame(t, a, 2, 0, window, false, 1)
	if end := ingestFrame(t, a, 0, 0, window, true, 2); !end {
		t.Fatal("no end of round")
	}
	inputs := a.TakeRound()
	if len(inputs) != 2 || inputs[0].Sensor != 2 || inputs[1].Sensor != 0 {
		t.Fatalf("round order: %+v", inputs)
	}
	before := inputs[0].Window.Data()[0]
	// Later frames must not mutate an already-taken round's windows.
	ingestFrame(t, a, 2, 1, window, true, 99)
	a.TakeRound()
	if inputs[0].Window.Data()[0] != before {
		t.Fatal("taken round window mutated by a later frame")
	}
}

// --- Link fault-injection interaction -----------------------------------

// TestStreamFramesThroughFaultyLink carries encoded frames through the
// comm.Link fault injectors and checks the framer discipline holds:
// corrupted frames are rejected by the CRC before decoding, duplicated
// frames never complete a round twice, and reordered frames surface as a
// sequence gap (reject) rather than a silently torn window.
func TestStreamFramesThroughFaultyLink(t *testing.T) {
	const window, rounds = 8, 40

	t.Run("duplicates dedupe", func(t *testing.T) {
		link := comm.NewLink[[]byte](comm.Config{Seed: 5, DupRate: 0.4})
		for k := 0; k < rounds; k++ {
			n := window
			if k > 0 {
				n = 3
			}
			b, err := comm.EncodeIMU(nil, comm.IMUFrame{
				Sensor: 0, Seq: k, EndRound: true, Samples: testSamples(n, float64(k)),
			})
			if err != nil {
				t.Fatal(err)
			}
			link.Send(k, b)
		}
		a := serve.NewStreamAssembler(1, window)
		classified := 0
		for _, b := range link.Deliver(rounds + 10) {
			f, err := comm.DecodeFrameBytes(b)
			if err != nil {
				t.Fatalf("clean frame rejected: %v", err)
			}
			imu, err := comm.DecodeIMU(f.Payload)
			if err != nil {
				t.Fatal(err)
			}
			end, err := a.Ingest(imu)
			if err != nil {
				t.Fatalf("ingest: %v", err)
			}
			if end {
				classified++
				a.TakeRound()
			}
		}
		if st := link.Stats(); st.Duplicated == 0 {
			t.Fatal("fault injector never duplicated — test is vacuous")
		}
		if classified != rounds {
			t.Fatalf("classified %d rounds from %d sent (+%d dups): duplicates double- or under-classified",
				classified, rounds, link.Stats().Duplicated)
		}
	})

	t.Run("corruption rejected by CRC", func(t *testing.T) {
		link := comm.NewLink[[]byte](comm.Config{Seed: 7, CorruptRate: 0.5})
		link.SetCorrupter(func(b []byte) []byte {
			d := append([]byte(nil), b...)
			comm.FlipBit(d, 17)
			return d
		})
		sent := 0
		for k := 0; k < rounds; k++ {
			b, err := comm.EncodeIMU(nil, comm.IMUFrame{
				Sensor: 0, Seq: k, EndRound: true, Samples: testSamples(window, float64(k)),
			})
			if err != nil {
				t.Fatal(err)
			}
			link.Send(k, b)
			sent++
		}
		bad := 0
		for _, b := range link.Deliver(rounds + 10) {
			if _, err := comm.DecodeFrameBytes(b); err != nil {
				bad++
			}
		}
		st := link.Stats()
		if st.Corrupted == 0 {
			t.Fatal("fault injector never corrupted — test is vacuous")
		}
		if bad != st.Corrupted {
			t.Fatalf("CRC caught %d of %d corrupted frames", bad, st.Corrupted)
		}
	})

	t.Run("reorder surfaces as gap", func(t *testing.T) {
		link := comm.NewLink[[]byte](comm.Config{Seed: 3, ReorderRate: 0.5, ReorderJitterTicks: 4})
		for k := 0; k < rounds; k++ {
			n := window
			if k > 0 {
				n = 3
			}
			b, err := comm.EncodeIMU(nil, comm.IMUFrame{
				Sensor: 0, Seq: k, EndRound: true, Samples: testSamples(n, float64(k)),
			})
			if err != nil {
				t.Fatal(err)
			}
			link.Send(k, b)
		}
		a := serve.NewStreamAssembler(1, window)
		sawGap := false
		swapped := false
		expect := 0
	deliver:
		// Tick-by-tick delivery exposes the reordering (a single late
		// Deliver would restore send order).
		for tick := 0; tick <= rounds+10; tick++ {
			for _, b := range link.Deliver(tick) {
				f, err := comm.DecodeFrameBytes(b)
				if err != nil {
					t.Fatalf("clean frame rejected: %v", err)
				}
				imu, err := comm.DecodeIMU(f.Payload)
				if err != nil {
					t.Fatal(err)
				}
				if imu.Seq != expect {
					swapped = true
				}
				expect++
				if _, err := a.Ingest(imu); err != nil {
					// The gap is detected the moment a later frame overtakes
					// an earlier one — the receiver rejects rather than
					// classifying on a torn signal.
					sawGap = true
					break deliver
				}
			}
		}
		if link.Stats().Reordered == 0 || !swapped {
			t.Fatal("fault injector never reordered — test is vacuous")
		}
		if !sawGap {
			t.Fatal("out-of-order frame ingested without a gap error")
		}
	})
}

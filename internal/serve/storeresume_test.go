package serve_test

import (
	"net"
	"testing"
	"time"

	"origin/internal/comm"
	"origin/internal/fleet"
	"origin/internal/fleet/fleettest"
	"origin/internal/serve"
)

// Cross-replica resume: two stream servers over independent managers that
// share one state store — the in-process shape of two serving replicas. A
// client streams rounds to replica A, A dies, and the client presents its
// resume token to replica B, which has never seen the session. B must adopt
// the session (core state and stream lineage) from the store and continue
// the classification sequence exactly where A stopped.

// replicaStack is one replica: its own manager and stream server over the
// shared registry and store.
func replicaStack(t *testing.T, reg *fleet.Registry, store fleet.StateStore) (*streamStack, *serve.StreamServer) {
	t.Helper()
	mgr := fleet.NewManager(fleet.Config{Registry: reg, QueueDepth: 64, Workers: 2, State: store})
	metrics := &serve.Metrics{}
	ss := serve.NewStreamServer(serve.StreamConfig{
		Manager: mgr, Metrics: metrics,
		RoundTimeout: 30 * time.Second, IdleTimeout: 30 * time.Second,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = ss.Serve(ln) }()
	t.Cleanup(func() {
		ss.Close()
		mgr.Close()
	})
	return &streamStack{mgr: mgr, metrics: metrics, addr: ln.Addr().String()}, ss
}

func TestStreamStoreResumeAcrossReplicas(t *testing.T) {
	reg := fleettest.NewRegistry()
	store := fleet.NewMemStateStore()
	a, ssA := replicaStack(t, reg, store)
	b, _ := replicaStack(t, reg, store)

	sess, err := a.mgr.CreateWithID("r-1", "MHEALTH", 7, fleet.Opts{})
	if err != nil {
		t.Fatal(err)
	}
	window := sess.Model().Window

	conn, br, ack := a.dialAck(t, "r-1")
	if ack.Resumed || ack.Token == "" {
		t.Fatalf("fresh ack: %+v", ack)
	}
	// Two full rounds on A, plus a mid-round frame (sensor 1 opens round 2)
	// so the migrated lineage carries ring state and round order.
	if _, err := conn.Write(imuFrame(t, 0, 0, window, true)); err != nil {
		t.Fatal(err)
	}
	res0 := readResult(t, br)
	if _, err := conn.Write(imuFrame(t, 0, 1, 16, true)); err != nil {
		t.Fatal(err)
	}
	res1 := readResult(t, br)
	if res0.Slot != 0 || res1.Slot != 1 {
		t.Fatalf("rounds on A answered slots %d,%d", res0.Slot, res1.Slot)
	}
	if _, err := conn.Write(imuFrame(t, 1, 0, window, false)); err != nil {
		t.Fatal(err)
	}
	waitCounter(t, a.metrics.StreamFrames.Load, 3, "stream frames on A")
	// A "dies" with the connection attached. Snapshots are written per
	// classified round, so the in-flight mid-round frame is lost with A;
	// B's hello-ack NextSeqs must tell the client to re-send it.
	ssA.Close()

	connB, brB, ackB := b.dialAck(t, "r-1", ack.Token)
	if !ackB.Resumed || ackB.Token != ack.Token {
		t.Fatalf("store resume ack: %+v", ackB)
	}
	if ackB.NextSlot != 2 || !ackB.HasLast || ackB.LastClass != res1.Class {
		t.Fatalf("store resume ack does not carry A's progress: %+v (res1=%+v)", ackB, res1)
	}
	if b.metrics.StreamStoreResumes.Load() != 1 {
		t.Fatalf("StreamStoreResumes = %d, want 1", b.metrics.StreamStoreResumes.Load())
	}
	// The persisted lineage is from round 1's snapshot: sensor 1's unfinished
	// frame was in flight, so B's acks tell the client to re-send from seq 0.
	if ackB.NextSeqs[0] != 2 || ackB.NextSeqs[1] != 0 {
		t.Fatalf("store resume seqs %v, want [2 0 ...]", ackB.NextSeqs)
	}
	// Re-send the lost frame and finish round 2 on B.
	if _, err := connB.Write(imuFrame(t, 1, 0, window, false)); err != nil {
		t.Fatal(err)
	}
	if _, err := connB.Write(imuFrame(t, 0, 2, 16, true)); err != nil {
		t.Fatal(err)
	}
	if res := readResult(t, brB); res.Slot != 2 {
		t.Fatalf("post-migration round answered slot %d, want 2", res.Slot)
	}
	// B's manager restored the session (not re-created it): counters travel.
	bs, err := b.mgr.Get("r-1")
	if err != nil {
		t.Fatal(err)
	}
	// 3 rounds, 4 sensor inputs (rounds 0 and 1 carried one sensor each,
	// round 2 carried two) — and A's share of both counters came from the
	// store, not from B observing A's traffic.
	if info := bs.Info(); info.Slots != 3 || info.Received != 4 {
		t.Fatalf("migrated session info %+v, want 3 slots / 4 received", info)
	}
	if b.mgr.Snapshot().SessionsRestored == 0 {
		t.Fatal("B absorbed the migration without counting a restore")
	}
}

// TestStreamStoreResumeTokenMismatch: a wrong token must miss even when the
// store holds the session — the token is the proof of lineage ownership.
func TestStreamStoreResumeTokenMismatch(t *testing.T) {
	reg := fleettest.NewRegistry()
	store := fleet.NewMemStateStore()
	a, ssA := replicaStack(t, reg, store)
	b, _ := replicaStack(t, reg, store)
	if _, err := a.mgr.CreateWithID("r-2", "MHEALTH", 1, fleet.Opts{}); err != nil {
		t.Fatal(err)
	}
	conn, br, ack := a.dialAck(t, "r-2")
	window := 0
	if sess, err := a.mgr.Get("r-2"); err == nil {
		window = sess.Model().Window
	}
	if _, err := conn.Write(imuFrame(t, 0, 0, window, true)); err != nil {
		t.Fatal(err)
	}
	readResult(t, br)
	ssA.Close()

	_, brB := b.dial(t, "r-2", ack.Token+"-forged")
	readError(t, brB, comm.StreamErrResume)
	if b.metrics.StreamResumeMisses.Load() != 1 {
		t.Fatalf("forged token: misses = %d, want 1", b.metrics.StreamResumeMisses.Load())
	}
	if b.metrics.StreamStoreResumes.Load() != 0 {
		t.Fatal("forged token must not count as a store resume")
	}
}

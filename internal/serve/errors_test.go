package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"origin/internal/fleet"
)

// prop: every fleet error maps to its contractual HTTP status, and the two
// transient conditions — shed load and shutdown drain — carry a Retry-After
// hint so clients back off instead of guessing.
func TestWriteErrorMapping(t *testing.T) {
	cases := []struct {
		err        error
		status     int
		retryAfter string
	}{
		{fmt.Errorf("%w: sensor 9", fleet.ErrInvalid), http.StatusBadRequest, ""},
		{fleet.ErrNotFound, http.StatusNotFound, ""},
		{fleet.ErrSaturated, http.StatusTooManyRequests, "1"},
		{fleet.ErrShutdown, http.StatusServiceUnavailable, "1"},
		{context.DeadlineExceeded, http.StatusGatewayTimeout, ""},
		{errors.New("disk on fire"), http.StatusInternalServerError, ""},
	}
	for _, tc := range cases {
		rec := httptest.NewRecorder()
		writeError(rec, tc.err)
		if rec.Code != tc.status {
			t.Errorf("writeError(%v): status %d, want %d", tc.err, rec.Code, tc.status)
		}
		if got := rec.Header().Get("Retry-After"); got != tc.retryAfter {
			t.Errorf("writeError(%v): Retry-After %q, want %q", tc.err, got, tc.retryAfter)
		}
		var body ErrorResponse
		if err := json.NewDecoder(rec.Body).Decode(&body); err != nil || body.Error == "" {
			t.Errorf("writeError(%v): bad body (err=%v, body=%+v)", tc.err, err, body)
		}
	}
}

package serve

import (
	"encoding/binary"
	"fmt"
	"math"

	"origin/internal/synth"
)

// Stream-lineage attachment codec. The fleet session snapshot carries an
// opaque attachment section for the serving front; the stream server uses it
// to externalize everything a resume needs that lives outside the session
// proper: the resume token, the last classified result (lost-push recovery),
// and the window assembler (per-sensor rings, sequence numbers, and the
// in-progress round order). With the attachment in the state store, a client
// whose replica died can present its resume token to whichever replica the
// router now picks and continue mid-window — the cross-replica analogue of
// the in-replica parked-state resume.
//
// The encoding mirrors the fleet codec conventions: magic + uvarint version,
// uvarint-length strings, zigzag ints, raw IEEE-754 float bits.

var attachMagic = [4]byte{'O', 'S', 'A', '1'}

const (
	attachVersion    = 1
	attachHasLast    = 0x01
	attachMaxToken   = 64
	attachMaxSensors = 4096
	attachMaxWindow  = 1 << 16
)

// encodeStreamAttachment snapshots one stream lineage. The caller must be
// the connection goroutine that owns st (no lock is taken).
func encodeStreamAttachment(st *streamState) []byte {
	a := st.asm
	b := append([]byte(nil), attachMagic[:]...)
	b = binary.AppendUvarint(b, attachVersion)
	b = binary.AppendUvarint(b, uint64(len(st.token)))
	b = append(b, st.token...)
	var flags byte
	if st.hasLast {
		flags |= attachHasLast
	}
	b = append(b, flags)
	b = binary.AppendUvarint(b, uint64(st.lastSlot))
	b = appendAttachZigzag(b, int64(st.lastClass))
	b = binary.AppendUvarint(b, uint64(len(a.sensors)))
	b = binary.AppendUvarint(b, uint64(a.window))
	for i := range a.sensors {
		ss := &a.sensors[i]
		b = binary.AppendUvarint(b, uint64(ss.nextSeq))
		b = binary.AppendUvarint(b, uint64(ss.filled))
		if ss.ring == nil {
			b = append(b, 0)
			continue
		}
		b = append(b, 1)
		for _, v := range ss.ring {
			b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
		}
	}
	b = binary.AppendUvarint(b, uint64(len(a.round)))
	for _, sensor := range a.round {
		b = binary.AppendUvarint(b, uint64(sensor))
	}
	return b
}

// decodeStreamAttachment rebuilds a parked-equivalent stream state from an
// attachment, validating it against the live model geometry. The returned
// state has no owner; attach installs one.
func decodeStreamAttachment(blob []byte, session string, sensors, window int) (*streamState, error) {
	if len(blob) < len(attachMagic) || string(blob[:4]) != string(attachMagic[:]) {
		return nil, fmt.Errorf("serve: bad stream attachment magic")
	}
	d := &attachReader{b: blob, off: 4}
	if v := d.uvarint(); d.err != nil || v != attachVersion {
		return nil, fmt.Errorf("serve: unsupported stream attachment version")
	}
	token := d.str(attachMaxToken)
	flags := d.byte()
	lastSlot := d.count(math.MaxInt32)
	lastClass := int(d.zigzag())
	ns := d.count(attachMaxSensors)
	win := d.count(attachMaxWindow)
	if d.err != nil || token == "" || flags&^byte(attachHasLast) != 0 {
		return nil, fmt.Errorf("serve: malformed stream attachment header")
	}
	if ns != sensors || win != window {
		return nil, fmt.Errorf("serve: stream attachment geometry %dx%d, model wants %dx%d", ns, win, sensors, window)
	}
	if lastClass < -1 {
		return nil, fmt.Errorf("serve: stream attachment last class %d", lastClass)
	}
	asm := NewStreamAssembler(sensors, window)
	for i := 0; i < sensors; i++ {
		ss := &asm.sensors[i]
		ss.nextSeq = d.count(math.MaxInt32)
		ss.filled = d.count(window)
		hasRing := d.byte()
		if d.err != nil || hasRing > 1 {
			return nil, fmt.Errorf("serve: malformed stream attachment sensor %d", i)
		}
		if hasRing == 1 {
			ss.ring = make([]float64, synth.Channels*window)
			for j := range ss.ring {
				ss.ring[j] = d.f64()
			}
		} else if ss.filled != 0 || ss.nextSeq != 0 {
			return nil, fmt.Errorf("serve: stream attachment sensor %d has progress but no ring", i)
		}
	}
	nr := d.count(sensors)
	for i := 0; i < nr; i++ {
		sensor := d.count(sensors - 1)
		if d.err != nil {
			break
		}
		if asm.inRound[sensor] {
			return nil, fmt.Errorf("serve: stream attachment repeats sensor %d in round order", sensor)
		}
		asm.inRound[sensor] = true
		asm.round = append(asm.round, sensor)
	}
	if d.err != nil || d.off != len(d.b) {
		return nil, fmt.Errorf("serve: malformed stream attachment")
	}
	return &streamState{
		session:   session,
		token:     token,
		asm:       asm,
		lastSlot:  lastSlot,
		lastClass: lastClass,
		hasLast:   flags&attachHasLast != 0,
	}, nil
}

func appendAttachZigzag(b []byte, v int64) []byte {
	return binary.AppendUvarint(b, uint64((v<<1)^(v>>63)))
}

// attachReader is a sticky-error cursor (the fleet codec keeps its own; the
// pattern is small enough that sharing would couple the packages for 40
// lines).
type attachReader struct {
	b   []byte
	off int
	err error
}

func (d *attachReader) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("truncated")
	}
}

func (d *attachReader) byte() byte {
	if d.err != nil || d.off >= len(d.b) {
		d.fail()
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *attachReader) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail()
		return 0
	}
	d.off += n
	return v
}

func (d *attachReader) count(max int) int {
	v := d.uvarint()
	if d.err == nil && v > uint64(max) {
		d.fail()
		return 0
	}
	return int(v)
}

func (d *attachReader) zigzag() int64 {
	u := d.uvarint()
	return int64(u>>1) ^ -int64(u&1)
}

func (d *attachReader) str(max int) string {
	n := d.count(max)
	if d.err != nil || d.off+n > len(d.b) {
		d.fail()
		return ""
	}
	v := string(d.b[d.off : d.off+n])
	d.off += n
	return v
}

func (d *attachReader) f64() float64 {
	if d.err != nil || d.off+8 > len(d.b) {
		d.fail()
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.b[d.off:]))
	d.off += 8
	return v
}

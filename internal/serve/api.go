// Package serve is the HTTP/JSON front of the fleet serving subsystem:
// session lifecycle, classification, health and Prometheus metrics over a
// fleet.Manager. Handlers are thin — decode, validate shape, call the
// manager, map its sentinel errors onto status codes — so every serving
// behaviour (backpressure, eviction, determinism) is testable below HTTP.
//
//	POST   /v1/sessions               open a session
//	GET    /v1/sessions/{id}          session snapshot
//	DELETE /v1/sessions/{id}          close a session
//	POST   /v1/sessions/{id}/classify one serving round
//	GET    /healthz                   liveness
//	GET    /metrics                   Prometheus text format
package serve

import "origin/internal/fleet"

// CreateSessionRequest opens a session for one wearer.
type CreateSessionRequest struct {
	// ID, when set, is the caller-chosen session id (1..64 bytes). The
	// router tier assigns ids so that a session's shard placement is a pure
	// function of the id; direct clients normally leave it empty and take
	// the server-minted id. Conflicts fail with 409.
	ID string `json:"id,omitempty"`
	// Profile is the dataset profile ("MHEALTH" or "PAMAP2").
	Profile string `json:"profile"`
	// User is the wearer id (any int64; used for bookkeeping and synth
	// replay, not authentication).
	User int64 `json:"user"`
	// StaleLimit / Quorum / Freeze are the per-session knobs of
	// fleet.Opts.
	StaleLimit int  `json:"staleLimit,omitempty"`
	Quorum     int  `json:"quorum,omitempty"`
	Freeze     bool `json:"freeze,omitempty"`
}

// CreateSessionResponse describes the opened session and the model
// geometry a client needs to form classify payloads.
type CreateSessionResponse struct {
	ID         string   `json:"id"`
	Profile    string   `json:"profile"`
	Sensors    int      `json:"sensors"`
	Classes    int      `json:"classes"`
	Window     int      `json:"window"`
	Activities []string `json:"activities"`
}

// Vote is one precomputed per-sensor softmax vote.
type Vote struct {
	Sensor     int     `json:"sensor"`
	Class      int     `json:"class"`
	Confidence float64 `json:"confidence"`
}

// Window is one raw per-sensor IMU window: Samples holds synth.Channels
// rows of equal length (the model's window size), accelerometer rows
// first.
type Window struct {
	Sensor  int         `json:"sensor"`
	Samples [][]float64 `json:"samples"`
}

// ClassifyRequest carries one serving round's fresh sensor data: any mix
// of precomputed votes and raw windows (a sensor should appear once). An
// empty request is a valid recall-only round.
type ClassifyRequest struct {
	Votes   []Vote   `json:"votes,omitempty"`
	Windows []Window `json:"windows,omitempty"`
}

// ClassifyResponse is the serving decision (fleet.ClassifyResult rendered
// as-is).
type ClassifyResponse = fleet.ClassifyResult

// SessionResponse is the GET /v1/sessions/{id} body.
type SessionResponse = fleet.SessionInfo

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
}

package serve

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"origin/internal/comm"
	"origin/internal/fleet"
	"origin/internal/synth"
	"origin/internal/tensor"
)

// Streaming ingest path.
//
// The HTTP/JSON classify path re-ships a full float64 IMU window per round
// and pays a fresh parse for each one. The stream path replaces both costs:
// a persistent TCP connection carries delta-quantised binary IMU frames
// (see the format comment in internal/comm/stream.go), and the server owns
// the sliding-window state — the client sends each sample once and the
// overlap between consecutive windows is reconstructed host-side from a
// per-(session, sensor) ring buffer. Completed rounds flow through the same
// fleet.Manager queue (and micro-batcher) as HTTP traffic, and results are
// pushed back as binary frames on the same connection.
//
// Determinism: a connection is serviced by one goroutine, a session's rounds
// arrive in connection order, and Manager.Classify serialises per session —
// so a session's classification sequence is a pure function of its frame
// stream, which is what lets the replay tests rebuild it serially.

// Metrics is the serving-side instrumentation shared by the HTTP and stream
// fronts, rendered by GET /metrics. ParseNanos/ParseRounds measure request
// decoding only (JSON decode + input shaping, or frame decode + window
// assembly), excluding inference — the amortised-parsing claim of the
// stream protocol is gated on exactly this counter pair.
type Metrics struct {
	ParseNanos  atomic.Int64
	ParseRounds atomic.Int64

	StreamConns   atomic.Int64
	StreamFrames  atomic.Int64
	StreamBytes   atomic.Int64
	StreamRejects atomic.Int64
	StreamRounds  atomic.Int64

	// Resume-protocol counters: sessions reattached after a disconnect,
	// hello-with-token lookups that found nothing (stale/expired/unknown),
	// states parked on disconnect, and parked states dropped by TTL or cap.
	StreamResumes      atomic.Int64
	StreamResumeMisses atomic.Int64
	StreamParked       atomic.Int64
	StreamExpired      atomic.Int64
	// StreamStoreResumes counts resumes served from the shared state store
	// rather than this replica's parked cache — each one is a session that
	// migrated here from another replica (shard-map change or peer death).
	StreamStoreResumes atomic.Int64

	// Downlink instrumentation: result-frame flushes (consecutive results
	// coalesce into one write) and heartbeats emitted.
	StreamResultFlushes atomic.Int64
	StreamHeartbeats    atomic.Int64
}

// noteParse records the decode cost of one classify round.
func (m *Metrics) noteParse(d time.Duration) {
	if m == nil {
		return
	}
	m.ParseNanos.Add(d.Nanoseconds())
	m.ParseRounds.Add(1)
}

// StreamConfig assembles a StreamServer.
type StreamConfig struct {
	// Manager is the fleet session service (required).
	Manager *fleet.Manager
	// Metrics receives stream/parse instrumentation (optional; share one
	// instance with the HTTP Server so /metrics covers both fronts).
	Metrics *Metrics
	// RoundTimeout bounds one classify round end to end (default 10s).
	RoundTimeout time.Duration
	// IdleTimeout closes connections with no inbound frame for this long
	// (default 5m) so dead wearables do not pin session state forever. The
	// server also writes a heartbeat every IdleTimeout/3, so a half-open
	// connection dies from the failed write instead of lingering.
	IdleTimeout time.Duration
	// ResumeTTL bounds how long a disconnected session's window-assembly
	// state stays parked awaiting a resume (default 2m; negative disables
	// resume entirely — disconnects discard state as before).
	ResumeTTL time.Duration
	// ResumeCap bounds the number of parked states (default 4096); beyond
	// it the oldest parked state is dropped.
	ResumeCap int
	// Now overrides the clock for the resume cache (tests only).
	Now func() time.Time
}

// StreamServer owns the persistent-connection binary ingest front. Serve
// accepts connections until Close; each connection is handled by one
// goroutine end to end.
type StreamServer struct {
	cfg    StreamConfig
	states *resumeCache
	closed atomic.Bool

	mu    sync.Mutex
	ln    net.Listener
	conns map[net.Conn]struct{}
	wg    sync.WaitGroup
}

// NewStreamServer builds a stream server over a manager.
func NewStreamServer(cfg StreamConfig) *StreamServer {
	if cfg.Manager == nil {
		panic("serve: StreamConfig.Manager is required")
	}
	if cfg.RoundTimeout <= 0 {
		cfg.RoundTimeout = 10 * time.Second
	}
	if cfg.IdleTimeout <= 0 {
		cfg.IdleTimeout = 5 * time.Minute
	}
	if cfg.ResumeTTL == 0 {
		cfg.ResumeTTL = 2 * time.Minute
	}
	if cfg.ResumeCap <= 0 {
		cfg.ResumeCap = 4096
	}
	return &StreamServer{
		cfg:    cfg,
		states: newResumeCache(cfg.ResumeTTL, cfg.ResumeCap, cfg.Metrics, cfg.Now),
		conns:  map[net.Conn]struct{}{},
	}
}

// ParkedSessions reports the stream states currently parked awaiting resume.
func (s *StreamServer) ParkedSessions() int { return s.states.parkedCount() }

// Serve accepts stream connections on ln until Close. It returns nil after
// Close, or the first accept error otherwise.
func (s *StreamServer) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.closed.Load() {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed.Load() {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.handle(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

// Close stops accepting connections and closes the live ones, then waits
// for their handlers to return.
func (s *StreamServer) Close() {
	if s.closed.Swap(true) {
		return
	}
	s.mu.Lock()
	if s.ln != nil {
		s.ln.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// streamAbort carries a protocol violation out of the per-frame handlers to
// the connection loop, which reports it as an error frame and closes.
type streamAbort struct {
	code int
	msg  string
}

func (e *streamAbort) Error() string { return e.msg }

// connWriter serializes writes to one connection: the handler's results and
// acks share the socket with the heartbeat goroutine.
type connWriter struct {
	mu   sync.Mutex
	conn net.Conn
}

func (w *connWriter) write(b []byte, timeout time.Duration) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	_ = w.conn.SetWriteDeadline(time.Now().Add(timeout))
	_, err := w.conn.Write(b)
	return err
}

// streamWriteTimeout bounds data writes (acks, results); rejects and
// heartbeats use the shorter streamCloseTimeout, since a peer that cannot
// drain a 7-byte frame promptly is as good as gone.
const (
	streamWriteTimeout = 10 * time.Second
	streamCloseTimeout = 2 * time.Second

	// streamFlushBytes force-flushes pending result frames even while more
	// uplink frames are buffered, bounding the coalescing window.
	streamFlushBytes = 8 << 10
)

// sanitizeID length-caps and strips non-printable bytes from an untrusted
// wire string before it is echoed into error frames or log lines: a hostile
// session id must not smuggle newlines or terminal control bytes.
func sanitizeID(s string) string {
	const maxID = 64
	truncated := false
	if len(s) > maxID {
		s, truncated = s[:maxID], true
	}
	b := []byte(s)
	for i, c := range b {
		if c < 0x20 || c > 0x7e {
			b[i] = '?'
		}
	}
	if truncated {
		b = append(b, "..."...)
	}
	return string(b)
}

// handle services one connection: preamble, hello/hello-ack, then the frame
// loop. On a network-level failure the session's assembly state is parked
// for resume; on a protocol violation it is discarded — the state is torn
// and a resume would classify from a corrupt signal.
func (s *StreamServer) handle(conn net.Conn) {
	defer conn.Close()
	if s.cfg.Metrics != nil {
		s.cfg.Metrics.StreamConns.Add(1)
	}
	w := &connWriter{conn: conn}
	br := bufio.NewReaderSize(conn, 32<<10)

	_ = conn.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil || magic != comm.StreamMagic {
		s.reject(w, comm.StreamErrProtocol, "bad stream preamble")
		return
	}
	frame, err := comm.ReadFrame(br)
	if err != nil || frame.Type != comm.FrameHello {
		s.reject(w, comm.StreamErrProtocol, "expected hello frame")
		return
	}
	hello, err := comm.DecodeHello(frame.Payload)
	if err != nil {
		s.reject(w, comm.StreamErrProtocol, err.Error())
		return
	}
	sess, err := s.cfg.Manager.Get(hello.Session)
	if err != nil {
		s.reject(w, comm.StreamErrSession, fmt.Sprintf("session %q: %v", sanitizeID(hello.Session), err))
		return
	}
	// Cross-replica resume fallback: when the client's token matches no
	// local parked state, rebuild the lineage from the shared state store.
	// Manager.Get above already restored the session core if the store was
	// ahead, so the attachment and the session agree on the round counter.
	var restore func() *streamState
	if s.cfg.Manager.HasStore() {
		restore = func() *streamState {
			snap, ok, err := s.cfg.Manager.StoredState(hello.Session)
			if err != nil || !ok || len(snap.Attachment) == 0 {
				return nil
			}
			rs, err := decodeStreamAttachment(snap.Attachment, hello.Session, sess.Model().Sensors(), sess.Model().Window)
			if err != nil {
				return nil
			}
			return rs
		}
	}
	st, resumed, err := s.states.attach(hello.Session, hello.Token, sess.Model().Sensors(), sess.Model().Window, sess.Info().Slots, conn, restore)
	if err != nil {
		s.reject(w, comm.StreamErrResume, err.Error())
		return
	}
	// From here on the state must be handed back exactly once; park is
	// flipped off on the paths where it is torn.
	park := true
	defer func() { s.states.release(st, park) }()

	// Persist the lineage (token included) before the ack hands the token to
	// the client: if this replica dies immediately after the ack, the token
	// must already be in the store or the client's resume would miss
	// fleet-wide. One write per (re)connect, not per frame.
	if s.cfg.Manager.HasStore() {
		if err := s.cfg.Manager.PersistSession(hello.Session, encodeStreamAttachment(st)); err != nil {
			park = false
			s.reject(w, comm.StreamErrInternal, "session state persist failed")
			return
		}
	}

	ack := comm.HelloAck{
		Resumed:  resumed,
		Token:    st.token,
		NextSlot: sess.Info().Slots,
		NextSeqs: st.asm.NextSeqs(),
	}
	if st.hasLast {
		ack.HasLast, ack.LastClass = true, st.lastClass
	}
	ackBytes, err := comm.EncodeHelloAck(nil, ack)
	if err != nil {
		park = false
		s.reject(w, comm.StreamErrInternal, "hello-ack encode failed")
		return
	}
	if err := w.write(ackBytes, streamWriteTimeout); err != nil {
		return
	}

	// Heartbeats at IdleTimeout/3: three missed beats fit inside the peer's
	// own idle window, and a half-open connection dies here from the failed
	// write instead of pinning the handler until the read deadline.
	hbStop := make(chan struct{})
	defer close(hbStop)
	if hb, err := comm.EncodeHeartbeat(nil); err == nil {
		go func() {
			t := time.NewTicker(s.cfg.IdleTimeout / 3)
			defer t.Stop()
			for {
				select {
				case <-hbStop:
					return
				case <-t.C:
					if err := w.write(hb, streamCloseTimeout); err != nil {
						conn.Close()
						return
					}
					if s.cfg.Metrics != nil {
						s.cfg.Metrics.StreamHeartbeats.Add(1)
					}
				}
			}
		}()
	}

	var pending []byte           // encoded result frames awaiting one flush
	var roundParse time.Duration // decode+assembly cost of the round so far
	flush := func() error {
		if len(pending) == 0 {
			return nil
		}
		if err := w.write(pending, streamWriteTimeout); err != nil {
			return err
		}
		pending = pending[:0]
		if s.cfg.Metrics != nil {
			s.cfg.Metrics.StreamResultFlushes.Add(1)
		}
		return nil
	}
	for {
		// Consecutive results coalesce while more uplink frames are already
		// buffered; flush before a read that would block.
		if len(pending) > 0 && br.Buffered() == 0 {
			if err := flush(); err != nil {
				return
			}
		}
		_ = conn.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
		// The blocking read sits outside the parse clock: parse time is the
		// CPU cost of turning delivered bytes into classify inputs, not the
		// closed-loop client's think time.
		frame, err := comm.ReadFrame(br)
		if err != nil {
			if err != io.EOF && err != io.ErrUnexpectedEOF {
				// A CRC mismatch is corruption, not disconnection: the frame
				// boundary is lost, so the lineage cannot be resumed.
				park = false
				s.reject(w, comm.StreamErrProtocol, err.Error())
			}
			return
		}
		parseStart := time.Now()
		if s.cfg.Metrics != nil {
			s.cfg.Metrics.StreamFrames.Add(1)
			s.cfg.Metrics.StreamBytes.Add(int64(len(frame.Payload) + comm.StreamEnvelopeOverhead))
		}
		switch frame.Type {
		case comm.FrameHeartbeat:
			continue
		case comm.FrameIMU:
			imu, err := comm.DecodeIMU(frame.Payload)
			if err != nil {
				park = false
				s.reject(w, comm.StreamErrProtocol, err.Error())
				return
			}
			endRound, err := st.asm.Ingest(imu)
			roundParse += time.Since(parseStart)
			if err != nil {
				park = false
				s.reject(w, comm.StreamErrProtocol, err.Error())
				return
			}
			if !endRound {
				continue
			}
			inputs := st.asm.TakeRound()
			s.cfg.Metrics.noteParse(roundParse)
			roundParse = 0
			res, err := s.classify(hello.Session, inputs)
			if err != nil {
				park = false
				var abort *streamAbort
				if errors.As(err, &abort) {
					s.reject(w, abort.code, abort.msg)
				} else {
					s.reject(w, comm.StreamErrInternal, err.Error())
				}
				return
			}
			// Record the result before attempting the push: if the write
			// fails, the parked state carries it to the resume hello-ack.
			st.lastSlot, st.lastClass, st.hasLast = res.Slot, res.Class, true
			// Persist the combined snapshot (session core + lineage) after
			// the classify and before the result reaches the client: once the
			// client sees slot k, the store must be able to serve slot k+1 —
			// the crash-recovery contract the shard drill gates on.
			if s.cfg.Manager.HasStore() {
				if err := s.cfg.Manager.PersistSession(hello.Session, encodeStreamAttachment(st)); err != nil {
					park = false
					s.reject(w, comm.StreamErrInternal, "session state persist failed")
					return
				}
			}
			if s.cfg.Metrics != nil {
				s.cfg.Metrics.StreamRounds.Add(1)
			}
			pending, err = comm.EncodeStreamResult(pending, comm.StreamResult{Slot: res.Slot, Class: res.Class})
			if err != nil {
				park = false
				return
			}
			if len(pending) >= streamFlushBytes {
				if err := flush(); err != nil {
					return
				}
			}
		default:
			park = false
			s.reject(w, comm.StreamErrProtocol, fmt.Sprintf("unexpected frame type %d", frame.Type))
			return
		}
	}
}

// classify routes one assembled round through the manager, absorbing
// transient saturation: a persistent stream must deliver every round of its
// session in order, so shed rounds are retried with backoff rather than
// surfaced (the HTTP client does the identical retry from its side).
func (s *StreamServer) classify(session string, inputs []fleet.SensorInput) (fleet.ClassifyResult, error) {
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.RoundTimeout)
	defer cancel()
	for attempt := 0; ; attempt++ {
		res, err := s.cfg.Manager.Classify(ctx, session, inputs)
		switch {
		case err == nil:
			return res, nil
		case errors.Is(err, fleet.ErrSaturated):
			if s.cfg.Metrics != nil {
				s.cfg.Metrics.StreamRejects.Add(1)
			}
			select {
			case <-ctx.Done():
				return fleet.ClassifyResult{}, &streamAbort{comm.StreamErrSaturated, "round shed past deadline"}
			case <-time.After(time.Duration(1+attempt) * 2 * time.Millisecond):
			}
		case errors.Is(err, fleet.ErrNotFound):
			return fleet.ClassifyResult{}, &streamAbort{comm.StreamErrSession, err.Error()}
		default:
			return fleet.ClassifyResult{}, err
		}
	}
}

// reject best-effort pushes an error frame before the connection drops, so
// clients can distinguish protocol mistakes from network failures. Callers
// must sanitize any client-supplied substring (see sanitizeID) before it
// lands in msg; the whole-message cap here is only the last line of defense.
func (s *StreamServer) reject(w *connWriter, code int, msg string) {
	if s.cfg.Metrics != nil {
		s.cfg.Metrics.StreamRejects.Add(1)
	}
	if len(msg) > 256 {
		msg = msg[:256]
	}
	out, err := comm.EncodeStreamError(nil, comm.StreamError{Code: code, Msg: msg})
	if err != nil {
		return
	}
	_ = w.write(out, streamCloseTimeout)
}

// StreamAssembler reconstructs sliding windows from one connection's IMU
// frames: per-sensor ring buffers of the last Window samples plus the
// dup/reorder discipline of the frame sequence numbers. It is the exact
// state machine the stream server runs per connection, exported so serial
// replay tests can rebuild a session's rounds from the same frame bytes.
//
// Sequence discipline (mirroring the duplicate-sensor fix at the session
// layer): frames must arrive with consecutive per-sensor sequence numbers.
// A re-delivered frame (seq ≤ last seen) is dropped — including its
// end-of-round flag, so a duplicated frame can never classify twice. A gap
// (seq > last+1) is rejected: samples are missing, so every later window
// of that sensor would silently be built from a torn signal.
type StreamAssembler struct {
	window  int
	sensors []streamSensor
	// round is the reporting order of sensors with fresh samples since the
	// last TakeRound; pending counts frames ingested since then.
	round   []int
	inRound []bool
}

type streamSensor struct {
	nextSeq int
	filled  int
	ring    []float64 // window samples per channel, channel-major, oldest first
}

// NewStreamAssembler builds an assembler for a model geometry.
func NewStreamAssembler(sensors, window int) *StreamAssembler {
	if sensors <= 0 || window <= 0 {
		panic("serve: invalid stream assembler geometry")
	}
	return &StreamAssembler{
		window:  window,
		sensors: make([]streamSensor, sensors),
		inRound: make([]bool, sensors),
	}
}

// Ingest feeds one decoded IMU frame into the assembler. It returns whether
// a round is now complete (the frame carried the end-of-round flag and was
// not a duplicate). Duplicate frames return (false, nil); malformed or
// gapped frames return an error — the receiver must drop the connection,
// never classify on a torn signal.
func (a *StreamAssembler) Ingest(f comm.IMUFrame) (endRound bool, err error) {
	if f.Sensor < 0 || f.Sensor >= len(a.sensors) {
		return false, fmt.Errorf("stream: frame from unknown sensor %d (have %d)", f.Sensor, len(a.sensors))
	}
	if len(f.Samples) != synth.Channels {
		return false, fmt.Errorf("stream: frame has %d channels, want %d", len(f.Samples), synth.Channels)
	}
	st := &a.sensors[f.Sensor]
	if f.Seq < st.nextSeq {
		// Radio-level duplicate: the samples (and any end-of-round flag)
		// were already ingested. Dropping the copy is what keeps a
		// duplicated frame from double-classifying a round.
		return false, nil
	}
	if f.Seq > st.nextSeq {
		return false, fmt.Errorf("stream: sensor %d frame gap: got seq %d, want %d", f.Sensor, f.Seq, st.nextSeq)
	}
	n := len(f.Samples[0])
	if st.filled == 0 && n < a.window {
		return false, fmt.Errorf("stream: sensor %d first frame carries %d samples, want at least the window (%d)", f.Sensor, n, a.window)
	}
	st.nextSeq++
	if st.ring == nil {
		st.ring = make([]float64, synth.Channels*a.window)
	}
	for c, row := range f.Samples {
		dst := st.ring[c*a.window : (c+1)*a.window]
		if n >= a.window {
			copy(dst, row[n-a.window:])
		} else {
			copy(dst, dst[n:])
			copy(dst[a.window-n:], row)
		}
	}
	if st.filled < a.window {
		st.filled += n
		if st.filled > a.window {
			st.filled = a.window
		}
	}
	if !a.inRound[f.Sensor] {
		a.inRound[f.Sensor] = true
		a.round = append(a.round, f.Sensor)
	}
	return f.EndRound, nil
}

// NextSeqs returns, per sensor, the next frame sequence number the
// assembler expects — the per-sensor acks a hello-ack carries, telling a
// resuming client which buffered frames are already ingested.
func (a *StreamAssembler) NextSeqs() []int {
	seqs := make([]int, len(a.sensors))
	for i := range a.sensors {
		seqs[i] = a.sensors[i].nextSeq
	}
	return seqs
}

// TakeRound returns the classify inputs of the completed round — one
// assembled window per sensor that reported since the last round, in
// first-report order — and resets the round state. The windows are copies;
// later frames do not mutate them.
func (a *StreamAssembler) TakeRound() []fleet.SensorInput {
	inputs := make([]fleet.SensorInput, 0, len(a.round))
	for _, sensor := range a.round {
		st := &a.sensors[sensor]
		w := tensor.New(synth.Channels, a.window)
		copy(w.Data(), st.ring)
		inputs = append(inputs, fleet.SensorInput{Sensor: sensor, Window: w})
		a.inRound[sensor] = false
	}
	a.round = a.round[:0]
	return inputs
}

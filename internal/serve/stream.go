package serve

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"origin/internal/comm"
	"origin/internal/fleet"
	"origin/internal/synth"
	"origin/internal/tensor"
)

// Streaming ingest path.
//
// The HTTP/JSON classify path re-ships a full float64 IMU window per round
// and pays a fresh parse for each one. The stream path replaces both costs:
// a persistent TCP connection carries delta-quantised binary IMU frames
// (see the format comment in internal/comm/stream.go), and the server owns
// the sliding-window state — the client sends each sample once and the
// overlap between consecutive windows is reconstructed host-side from a
// per-(session, sensor) ring buffer. Completed rounds flow through the same
// fleet.Manager queue (and micro-batcher) as HTTP traffic, and results are
// pushed back as binary frames on the same connection.
//
// Determinism: a connection is serviced by one goroutine, a session's rounds
// arrive in connection order, and Manager.Classify serialises per session —
// so a session's classification sequence is a pure function of its frame
// stream, which is what lets the replay tests rebuild it serially.

// Metrics is the serving-side instrumentation shared by the HTTP and stream
// fronts, rendered by GET /metrics. ParseNanos/ParseRounds measure request
// decoding only (JSON decode + input shaping, or frame decode + window
// assembly), excluding inference — the amortised-parsing claim of the
// stream protocol is gated on exactly this counter pair.
type Metrics struct {
	ParseNanos  atomic.Int64
	ParseRounds atomic.Int64

	StreamConns   atomic.Int64
	StreamFrames  atomic.Int64
	StreamBytes   atomic.Int64
	StreamRejects atomic.Int64
	StreamRounds  atomic.Int64
}

// noteParse records the decode cost of one classify round.
func (m *Metrics) noteParse(d time.Duration) {
	if m == nil {
		return
	}
	m.ParseNanos.Add(d.Nanoseconds())
	m.ParseRounds.Add(1)
}

// StreamConfig assembles a StreamServer.
type StreamConfig struct {
	// Manager is the fleet session service (required).
	Manager *fleet.Manager
	// Metrics receives stream/parse instrumentation (optional; share one
	// instance with the HTTP Server so /metrics covers both fronts).
	Metrics *Metrics
	// RoundTimeout bounds one classify round end to end (default 10s).
	RoundTimeout time.Duration
	// IdleTimeout closes connections with no inbound frame for this long
	// (default 5m) so dead wearables do not pin session state forever.
	IdleTimeout time.Duration
}

// StreamServer owns the persistent-connection binary ingest front. Serve
// accepts connections until Close; each connection is handled by one
// goroutine end to end.
type StreamServer struct {
	cfg    StreamConfig
	closed atomic.Bool

	mu    sync.Mutex
	ln    net.Listener
	conns map[net.Conn]struct{}
	wg    sync.WaitGroup
}

// NewStreamServer builds a stream server over a manager.
func NewStreamServer(cfg StreamConfig) *StreamServer {
	if cfg.Manager == nil {
		panic("serve: StreamConfig.Manager is required")
	}
	if cfg.RoundTimeout <= 0 {
		cfg.RoundTimeout = 10 * time.Second
	}
	if cfg.IdleTimeout <= 0 {
		cfg.IdleTimeout = 5 * time.Minute
	}
	return &StreamServer{cfg: cfg, conns: map[net.Conn]struct{}{}}
}

// Serve accepts stream connections on ln until Close. It returns nil after
// Close, or the first accept error otherwise.
func (s *StreamServer) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.closed.Load() {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed.Load() {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.handle(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

// Close stops accepting connections and closes the live ones, then waits
// for their handlers to return.
func (s *StreamServer) Close() {
	if s.closed.Swap(true) {
		return
	}
	s.mu.Lock()
	if s.ln != nil {
		s.ln.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// streamAbort carries a protocol violation out of the per-frame handlers to
// the connection loop, which reports it as an error frame and closes.
type streamAbort struct {
	code int
	msg  string
}

func (e *streamAbort) Error() string { return e.msg }

// handle services one connection: preamble, hello, then the frame loop.
func (s *StreamServer) handle(conn net.Conn) {
	defer conn.Close()
	if s.cfg.Metrics != nil {
		s.cfg.Metrics.StreamConns.Add(1)
	}
	br := bufio.NewReaderSize(conn, 32<<10)

	_ = conn.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil || magic != comm.StreamMagic {
		s.reject(conn, comm.StreamErrProtocol, "bad stream preamble")
		return
	}
	frame, err := comm.ReadFrame(br)
	if err != nil || frame.Type != comm.FrameHello {
		s.reject(conn, comm.StreamErrProtocol, "expected hello frame")
		return
	}
	hello, err := comm.DecodeHello(frame.Payload)
	if err != nil {
		s.reject(conn, comm.StreamErrProtocol, err.Error())
		return
	}
	sess, err := s.cfg.Manager.Get(hello.Session)
	if err != nil {
		s.reject(conn, comm.StreamErrSession, fmt.Sprintf("session %q: %v", hello.Session, err))
		return
	}
	asm := NewStreamAssembler(sess.Model().Sensors(), sess.Model().Window)

	out := make([]byte, 0, 64)
	var roundParse time.Duration // decode+assembly cost of the round so far
	for {
		_ = conn.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
		// The blocking read sits outside the parse clock: parse time is the
		// CPU cost of turning delivered bytes into classify inputs, not the
		// closed-loop client's think time.
		frame, err := comm.ReadFrame(br)
		if err != nil {
			if err != io.EOF {
				s.reject(conn, comm.StreamErrProtocol, err.Error())
			}
			return
		}
		parseStart := time.Now()
		if s.cfg.Metrics != nil {
			s.cfg.Metrics.StreamFrames.Add(1)
			s.cfg.Metrics.StreamBytes.Add(int64(len(frame.Payload) + comm.StreamEnvelopeOverhead))
		}
		switch frame.Type {
		case comm.FrameHeartbeat:
			continue
		case comm.FrameIMU:
			imu, err := comm.DecodeIMU(frame.Payload)
			if err != nil {
				s.reject(conn, comm.StreamErrProtocol, err.Error())
				return
			}
			endRound, err := asm.Ingest(imu)
			roundParse += time.Since(parseStart)
			if err != nil {
				s.reject(conn, comm.StreamErrProtocol, err.Error())
				return
			}
			if !endRound {
				continue
			}
			inputs := asm.TakeRound()
			s.cfg.Metrics.noteParse(roundParse)
			roundParse = 0
			res, err := s.classify(hello.Session, inputs)
			if err != nil {
				var abort *streamAbort
				if errors.As(err, &abort) {
					s.reject(conn, abort.code, abort.msg)
				} else {
					s.reject(conn, comm.StreamErrInternal, err.Error())
				}
				return
			}
			if s.cfg.Metrics != nil {
				s.cfg.Metrics.StreamRounds.Add(1)
			}
			out, err = comm.EncodeStreamResult(out[:0], comm.StreamResult{Slot: res.Slot, Class: res.Class})
			if err != nil {
				return
			}
			if _, err := conn.Write(out); err != nil {
				return
			}
		default:
			s.reject(conn, comm.StreamErrProtocol, fmt.Sprintf("unexpected frame type %d", frame.Type))
			return
		}
	}
}

// classify routes one assembled round through the manager, absorbing
// transient saturation: a persistent stream must deliver every round of its
// session in order, so shed rounds are retried with backoff rather than
// surfaced (the HTTP client does the identical retry from its side).
func (s *StreamServer) classify(session string, inputs []fleet.SensorInput) (fleet.ClassifyResult, error) {
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.RoundTimeout)
	defer cancel()
	for attempt := 0; ; attempt++ {
		res, err := s.cfg.Manager.Classify(ctx, session, inputs)
		switch {
		case err == nil:
			return res, nil
		case errors.Is(err, fleet.ErrSaturated):
			if s.cfg.Metrics != nil {
				s.cfg.Metrics.StreamRejects.Add(1)
			}
			select {
			case <-ctx.Done():
				return fleet.ClassifyResult{}, &streamAbort{comm.StreamErrSaturated, "round shed past deadline"}
			case <-time.After(time.Duration(1+attempt) * 2 * time.Millisecond):
			}
		case errors.Is(err, fleet.ErrNotFound):
			return fleet.ClassifyResult{}, &streamAbort{comm.StreamErrSession, err.Error()}
		default:
			return fleet.ClassifyResult{}, err
		}
	}
}

// reject best-effort pushes an error frame before the connection drops, so
// clients can distinguish protocol mistakes from network failures.
func (s *StreamServer) reject(conn net.Conn, code int, msg string) {
	if s.cfg.Metrics != nil {
		s.cfg.Metrics.StreamRejects.Add(1)
	}
	if len(msg) > 256 {
		msg = msg[:256]
	}
	out, err := comm.EncodeStreamError(nil, comm.StreamError{Code: code, Msg: msg})
	if err != nil {
		return
	}
	_ = conn.SetWriteDeadline(time.Now().Add(2 * time.Second))
	_, _ = conn.Write(out)
}

// StreamAssembler reconstructs sliding windows from one connection's IMU
// frames: per-sensor ring buffers of the last Window samples plus the
// dup/reorder discipline of the frame sequence numbers. It is the exact
// state machine the stream server runs per connection, exported so serial
// replay tests can rebuild a session's rounds from the same frame bytes.
//
// Sequence discipline (mirroring the duplicate-sensor fix at the session
// layer): frames must arrive with consecutive per-sensor sequence numbers.
// A re-delivered frame (seq ≤ last seen) is dropped — including its
// end-of-round flag, so a duplicated frame can never classify twice. A gap
// (seq > last+1) is rejected: samples are missing, so every later window
// of that sensor would silently be built from a torn signal.
type StreamAssembler struct {
	window  int
	sensors []streamSensor
	// round is the reporting order of sensors with fresh samples since the
	// last TakeRound; pending counts frames ingested since then.
	round   []int
	inRound []bool
}

type streamSensor struct {
	nextSeq int
	filled  int
	ring    []float64 // window samples per channel, channel-major, oldest first
}

// NewStreamAssembler builds an assembler for a model geometry.
func NewStreamAssembler(sensors, window int) *StreamAssembler {
	if sensors <= 0 || window <= 0 {
		panic("serve: invalid stream assembler geometry")
	}
	return &StreamAssembler{
		window:  window,
		sensors: make([]streamSensor, sensors),
		inRound: make([]bool, sensors),
	}
}

// Ingest feeds one decoded IMU frame into the assembler. It returns whether
// a round is now complete (the frame carried the end-of-round flag and was
// not a duplicate). Duplicate frames return (false, nil); malformed or
// gapped frames return an error — the receiver must drop the connection,
// never classify on a torn signal.
func (a *StreamAssembler) Ingest(f comm.IMUFrame) (endRound bool, err error) {
	if f.Sensor < 0 || f.Sensor >= len(a.sensors) {
		return false, fmt.Errorf("stream: frame from unknown sensor %d (have %d)", f.Sensor, len(a.sensors))
	}
	if len(f.Samples) != synth.Channels {
		return false, fmt.Errorf("stream: frame has %d channels, want %d", len(f.Samples), synth.Channels)
	}
	st := &a.sensors[f.Sensor]
	if f.Seq < st.nextSeq {
		// Radio-level duplicate: the samples (and any end-of-round flag)
		// were already ingested. Dropping the copy is what keeps a
		// duplicated frame from double-classifying a round.
		return false, nil
	}
	if f.Seq > st.nextSeq {
		return false, fmt.Errorf("stream: sensor %d frame gap: got seq %d, want %d", f.Sensor, f.Seq, st.nextSeq)
	}
	n := len(f.Samples[0])
	if st.filled == 0 && n < a.window {
		return false, fmt.Errorf("stream: sensor %d first frame carries %d samples, want at least the window (%d)", f.Sensor, n, a.window)
	}
	st.nextSeq++
	if st.ring == nil {
		st.ring = make([]float64, synth.Channels*a.window)
	}
	for c, row := range f.Samples {
		dst := st.ring[c*a.window : (c+1)*a.window]
		if n >= a.window {
			copy(dst, row[n-a.window:])
		} else {
			copy(dst, dst[n:])
			copy(dst[a.window-n:], row)
		}
	}
	if st.filled < a.window {
		st.filled += n
		if st.filled > a.window {
			st.filled = a.window
		}
	}
	if !a.inRound[f.Sensor] {
		a.inRound[f.Sensor] = true
		a.round = append(a.round, f.Sensor)
	}
	return f.EndRound, nil
}

// TakeRound returns the classify inputs of the completed round — one
// assembled window per sensor that reported since the last round, in
// first-report order — and resets the round state. The windows are copies;
// later frames do not mutate them.
func (a *StreamAssembler) TakeRound() []fleet.SensorInput {
	inputs := make([]fleet.SensorInput, 0, len(a.round))
	for _, sensor := range a.round {
		st := &a.sensors[sensor]
		w := tensor.New(synth.Channels, a.window)
		copy(w.Data(), st.ring)
		inputs = append(inputs, fleet.SensorInput{Sensor: sensor, Window: w})
		a.inRound[sensor] = false
	}
	a.round = a.round[:0]
	return inputs
}

package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"origin/internal/fleet"
	"origin/internal/tensor"
)

// Config assembles a Server.
type Config struct {
	// Manager is the fleet session service (required).
	Manager *fleet.Manager
	// RequestTimeout bounds one classify round end to end (default 10s).
	RequestTimeout time.Duration
	// MaxBodyBytes bounds request bodies (default 8 MiB — three raw IMU
	// windows are ~10 KiB of JSON, so this is generous headroom, not a
	// working size).
	MaxBodyBytes int64
	// Metrics receives parse-cost instrumentation (optional; share one
	// instance with a StreamServer so /metrics covers both fronts).
	Metrics *Metrics
}

// Server is the HTTP front of a fleet.Manager.
type Server struct {
	cfg Config
	mux *http.ServeMux
}

// New builds the server and its routes.
func New(cfg Config) *Server {
	if cfg.Manager == nil {
		panic("serve: Config.Manager is required")
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 10 * time.Second
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 8 << 20
	}
	s := &Server{cfg: cfg, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /v1/sessions", s.handleCreate)
	s.mux.HandleFunc("GET /v1/sessions/{id}", s.handleGet)
	s.mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleDelete)
	s.mux.HandleFunc("POST /v1/sessions/{id}/classify", s.handleClassify)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	s.mux.ServeHTTP(w, r)
}

// writeJSON writes a JSON response with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError maps a fleet error onto an HTTP status and JSON body.
func writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, fleet.ErrInvalid):
		status = http.StatusBadRequest
	case errors.Is(err, fleet.ErrNotFound):
		status = http.StatusNotFound
	case errors.Is(err, fleet.ErrExists):
		status = http.StatusConflict
	case errors.Is(err, fleet.ErrSaturated):
		// Shed load: tell the client to back off briefly instead of
		// letting the queue grow without bound.
		w.Header().Set("Retry-After", "1")
		status = http.StatusTooManyRequests
	case errors.Is(err, fleet.ErrShutdown):
		// Draining for shutdown: a restart or another replica will accept
		// the retry, so make the 503 explicitly retryable instead of
		// leaving clients to guess.
		w.Header().Set("Retry-After", "1")
		status = http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		status = http.StatusGatewayTimeout
	}
	writeJSON(w, status, ErrorResponse{Error: err.Error()})
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var req CreateSessionRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, fmt.Errorf("%w: %v", fleet.ErrInvalid, err))
		return
	}
	opts := fleet.Opts{StaleLimit: req.StaleLimit, Quorum: req.Quorum, Freeze: req.Freeze}
	var sess *fleet.Session
	var err error
	if req.ID != "" {
		sess, err = s.cfg.Manager.CreateWithID(req.ID, req.Profile, req.User, opts)
	} else {
		sess, err = s.cfg.Manager.Create(req.Profile, req.User, opts)
	}
	if err != nil {
		// An unknown profile is a client mistake, not a server fault.
		if !errors.Is(err, fleet.ErrShutdown) && !errors.Is(err, fleet.ErrInvalid) &&
			!errors.Is(err, fleet.ErrExists) {
			err = fmt.Errorf("%w: %v", fleet.ErrInvalid, err)
		}
		writeError(w, err)
		return
	}
	m := sess.Model()
	writeJSON(w, http.StatusCreated, CreateSessionResponse{
		ID:         sess.ID(),
		Profile:    m.Name,
		Sensors:    m.Sensors(),
		Classes:    m.Classes(),
		Window:     m.Window,
		Activities: m.System.Profile.Activities,
	})
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	sess, err := s.cfg.Manager.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, sess.Info())
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	if err := s.cfg.Manager.Delete(r.PathValue("id")); err != nil {
		writeError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// Inputs converts the JSON payload into fleet sensor inputs: votes first,
// then windows, each group in request order. The order is part of the
// deterministic replay contract, which is why this conversion is exported:
// the replay tests feed loadgen-generated ClassifyRequests through it to
// drive facade sessions with byte-identical input sequences.
func Inputs(req *ClassifyRequest) ([]fleet.SensorInput, error) {
	inputs := make([]fleet.SensorInput, 0, len(req.Votes)+len(req.Windows))
	for _, v := range req.Votes {
		inputs = append(inputs, fleet.SensorInput{Sensor: v.Sensor, Class: v.Class, Confidence: v.Confidence})
	}
	for _, win := range req.Windows {
		if len(win.Samples) == 0 {
			return nil, fmt.Errorf("%w: window for sensor %d has no samples", fleet.ErrInvalid, win.Sensor)
		}
		cols := len(win.Samples[0])
		t := tensor.New(len(win.Samples), cols)
		d := t.Data()
		for r, row := range win.Samples {
			if len(row) != cols {
				return nil, fmt.Errorf("%w: window for sensor %d has ragged rows", fleet.ErrInvalid, win.Sensor)
			}
			copy(d[r*cols:(r+1)*cols], row)
		}
		inputs = append(inputs, fleet.SensorInput{Sensor: win.Sensor, Window: t})
	}
	return inputs, nil
}

func (s *Server) handleClassify(w http.ResponseWriter, r *http.Request) {
	// The parse clock covers JSON decode plus input shaping — the cost the
	// binary stream path amortises away (see Metrics.ParseNanos).
	parseStart := time.Now()
	var req ClassifyRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, fmt.Errorf("%w: %v", fleet.ErrInvalid, err))
		return
	}
	inputs, err := Inputs(&req)
	if err != nil {
		writeError(w, err)
		return
	}
	s.cfg.Metrics.noteParse(time.Since(parseStart))
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	res, err := s.cfg.Manager.Classify(ctx, r.PathValue("id"), inputs)
	if err != nil {
		writeError(w, err)
		return
	}
	// With externalized state, the round is durable before the client sees
	// its result: once the response ships, any replica can continue from
	// slot+1. HTTP rounds carry no stream lineage, so the attachment is nil.
	if s.cfg.Manager.HasStore() {
		if err := s.cfg.Manager.PersistSession(r.PathValue("id"), nil); err != nil {
			writeError(w, err)
			return
		}
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	tel := s.cfg.Manager.Telemetry()
	if err := tel.WritePrometheus(w); err != nil {
		return
	}
	snap := s.cfg.Manager.Snapshot()
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP origin_serve_%s %s\n# TYPE origin_serve_%s gauge\norigin_serve_%s %d\n", name, help, name, name, v)
	}
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP origin_serve_%s %s\n# TYPE origin_serve_%s counter\norigin_serve_%s %d\n", name, help, name, name, v)
	}
	gauge("sessions_active", "Live sessions.", int64(snap.SessionsActive))
	counter("sessions_created_total", "Sessions opened.", snap.SessionsCreated)
	counter("sessions_evicted_total", "Sessions evicted by LRU/TTL.", snap.SessionsEvicted)
	counter("sessions_closed_total", "Sessions closed explicitly.", snap.SessionsClosed)
	counter("requests_accepted_total", "Classify requests admitted to the queue.", snap.RequestsAccepted)
	counter("requests_shed_total", "Classify requests shed at queue saturation.", snap.RequestsShed)
	counter("requests_done_total", "Classify requests completed.", snap.RequestsDone)
	gauge("queue_depth", "Queued (not yet started) classify jobs.", int64(snap.QueueDepth))
	counter("windows_batched_total", "Windows scored through the micro-batcher.", snap.WindowsBatched)
	counter("batch_flushes_total", "Micro-batch inference flushes.", snap.BatchFlushes)
	counter("sessions_restored_total", "Sessions rebuilt from the shared state store (migrations absorbed).", snap.SessionsRestored)
	if m := s.cfg.Metrics; m != nil {
		counter("parse_nanos_total", "Request-decode time (JSON or stream frames) in nanoseconds.", m.ParseNanos.Load())
		counter("parse_rounds_total", "Classify rounds whose request decode was timed.", m.ParseRounds.Load())
		counter("stream_conns_total", "Stream connections accepted.", m.StreamConns.Load())
		counter("stream_frames_total", "Stream frames ingested.", m.StreamFrames.Load())
		counter("stream_bytes_total", "Stream uplink bytes ingested (payload plus envelope).", m.StreamBytes.Load())
		counter("stream_rejects_total", "Stream frames or rounds rejected (protocol errors, shed retries).", m.StreamRejects.Load())
		counter("stream_rounds_total", "Classify rounds completed over the stream front.", m.StreamRounds.Load())
		counter("stream_resumes_total", "Stream sessions resumed after a disconnect.", m.StreamResumes.Load())
		counter("stream_resume_misses_total", "Hello-with-token lookups that found no resumable state.", m.StreamResumeMisses.Load())
		counter("stream_store_resumes_total", "Stream resumes served from the shared state store (migrated sessions).", m.StreamStoreResumes.Load())
		counter("stream_parked_total", "Stream states parked on disconnect awaiting resume.", m.StreamParked.Load())
		counter("stream_resume_expired_total", "Parked stream states dropped by TTL or cap.", m.StreamExpired.Load())
		counter("stream_result_flushes_total", "Downlink writes carrying one or more coalesced result frames.", m.StreamResultFlushes.Load())
		counter("stream_heartbeats_total", "Server heartbeat frames written.", m.StreamHeartbeats.Load())
	}
}

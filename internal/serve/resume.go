package serve

import (
	"container/list"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Resume cache: disconnection-survivable stream session state.
//
// A stream connection's window-assembly state (the per-sensor ring buffers
// and sequence numbers) used to live and die with the connection, so every
// reconnect silently restarted window assembly. The cache decouples the two:
// state is keyed by session id, owned by at most one live connection at a
// time, and parked — bounded in count and TTL'd — when that connection dies.
// A client reconnecting with the resume token its hello-ack carried gets the
// state reattached exactly where it left off; the per-sensor sequence acks
// in the new hello-ack tell it which frames to re-send, and the assembler's
// dup discipline drops any overlap, so a re-sent end-of-round frame can
// never classify twice.
//
// The entry also records the last classified result of the stream lineage.
// A closed-loop client has at most one result in flight, so when the
// connection dies between classify and the result push, the next hello-ack
// (NextSlot/LastClass) is enough to recover it. Pipelined clients that keep
// several rounds in flight can still lose all but the newest unpushed
// result; the resume guarantee is scoped to closed-loop use.
type resumeCache struct {
	ttl     time.Duration // <= 0 disables parking entirely
	cap     int           // max parked (detached) entries
	metrics *Metrics
	now     func() time.Time

	mu      sync.Mutex
	entries map[string]*streamState
	parked  *list.List // *streamState, oldest park first

	tokens atomic.Int64
}

// streamState is one session's stream-lineage state: the window assembler,
// the resume token, and the last classified result. While a connection owns
// it, owner/done are set; parked entries have owner nil and sit in the
// parked list until resumed, expired, or displaced by the cap.
type streamState struct {
	session string
	token   string
	asm     *StreamAssembler

	// Last result classified over this lineage, for lost-push recovery.
	lastSlot  int
	lastClass int
	hasLast   bool

	owner    net.Conn      // live owning connection, nil while parked
	done     chan struct{} // closed when the owning handler releases the state
	parkedAt time.Time
	elem     *list.Element // position in parked, nil while attached
}

func newResumeCache(ttl time.Duration, capacity int, metrics *Metrics, now func() time.Time) *resumeCache {
	if now == nil {
		now = time.Now
	}
	return &resumeCache{
		ttl:     ttl,
		cap:     capacity,
		metrics: metrics,
		now:     now,
		entries: map[string]*streamState{},
		parked:  list.New(),
	}
}

// attach acquires the session's stream state for conn. A fresh hello (no
// token) discards any previous state and starts a new lineage; a hello with
// a token resumes the parked state or fails with a resume miss. If another
// connection still owns the state (a half-open predecessor the client
// outran), it is closed and waited for first, so state hand-off is strictly
// serialized.
//
// restore, when non-nil, is the cross-replica fallback: on a token that
// matches no local parked state, it may rebuild the state from the shared
// state store (returning nil when the store has nothing usable). A hit
// counts as StreamStoreResumes — the "migrated resume" the shard drill
// gates on — and replaces whatever stale local entry existed.
//
// curSlot is the session core's next slot (from the manager, which has
// already synced with the state store). A locally parked lineage whose last
// classified slot is behind curSlot-1 is stale — the session advanced on
// another replica while parked here, the shape rebalancing produces when
// ownership bounces back — and must be replaced from the store, never
// resumed.
func (r *resumeCache) attach(session, token string, sensors, window, curSlot int, conn net.Conn, restore func() *streamState) (st *streamState, resumed bool, err error) {
	for {
		r.mu.Lock()
		r.sweepLocked()
		e := r.entries[session]
		if e == nil || e.owner == nil {
			defer r.mu.Unlock()
			if token == "" {
				// Fresh lineage: drop whatever was parked.
				if e != nil {
					r.removeLocked(e)
				}
				st = &streamState{
					session: session,
					token:   fmt.Sprintf("rt-%d", r.tokens.Add(1)),
					asm:     NewStreamAssembler(sensors, window),
					owner:   conn,
					done:    make(chan struct{}),
				}
				r.entries[session] = st
				return st, false, nil
			}
			stale := e != nil && e.token == token && e.hasLast && e.lastSlot < curSlot-1
			if e == nil || e.token != token || stale {
				if restore != nil {
					if st = restore(); st != nil && st.token == token {
						if e != nil {
							r.removeLocked(e)
						}
						st.owner = conn
						st.done = make(chan struct{})
						r.entries[session] = st
						if r.metrics != nil {
							r.metrics.StreamStoreResumes.Add(1)
						}
						return st, true, nil
					}
				}
				if r.metrics != nil {
					r.metrics.StreamResumeMisses.Add(1)
				}
				return nil, false, fmt.Errorf("no resumable state for session")
			}
			r.parked.Remove(e.elem)
			e.elem = nil
			e.owner = conn
			e.done = make(chan struct{})
			if r.metrics != nil {
				r.metrics.StreamResumes.Add(1)
			}
			return e, true, nil
		}
		// A previous connection still owns the state (half-open, or its
		// handler is mid-classify). Kick it and wait for the hand-off.
		owner, done := e.owner, e.done
		r.mu.Unlock()
		owner.Close()
		<-done
	}
}

// release returns st to the cache when its owning handler exits. keep parks
// the state for a future resume (subject to TTL and cap); !keep discards it
// — the path for protocol violations, where the state is torn.
func (r *resumeCache) release(st *streamState, keep bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.entries[st.session] == st && st.owner != nil {
		st.owner = nil
		if keep && r.ttl > 0 {
			st.parkedAt = r.now()
			st.elem = r.parked.PushBack(st)
			if r.metrics != nil {
				r.metrics.StreamParked.Add(1)
			}
			for r.cap > 0 && r.parked.Len() > r.cap {
				r.expireLocked(r.parked.Front().Value.(*streamState))
			}
		} else {
			r.removeLocked(st)
		}
	}
	close(st.done)
}

// sweepLocked evicts parked entries whose TTL has run out.
func (r *resumeCache) sweepLocked() {
	if r.ttl <= 0 {
		return
	}
	cutoff := r.now().Add(-r.ttl)
	for e := r.parked.Front(); e != nil; {
		st := e.Value.(*streamState)
		if st.parkedAt.After(cutoff) {
			break // list is in park order; the rest are younger
		}
		e = e.Next()
		r.expireLocked(st)
	}
}

func (r *resumeCache) expireLocked(st *streamState) {
	r.removeLocked(st)
	if r.metrics != nil {
		r.metrics.StreamExpired.Add(1)
	}
}

func (r *resumeCache) removeLocked(st *streamState) {
	if st.elem != nil {
		r.parked.Remove(st.elem)
		st.elem = nil
	}
	if r.entries[st.session] == st {
		delete(r.entries, st.session)
	}
}

// parkedCount reports the detached entries currently held (for /metrics).
func (r *resumeCache) parkedCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sweepLocked()
	return r.parked.Len()
}

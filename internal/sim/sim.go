// Package sim is the discrete-time simulator that binds everything
// together: an activity timeline drives what the IMUs sense, a harvesting
// trace drives what the capacitors store, a scheduling policy decides which
// node infers in each slot, the NVP model executes those inferences
// intermittently, and the host aggregates results into the system's per-slot
// classification.
//
// Time is organised in scheduler slots of SlotSeconds, subdivided into the
// harvesting trace's tick (10 ms): within every tick each node harvests and
// (if busy) computes. A node's in-flight inference survives slot boundaries
// — it is aborted only when the policy re-activates that node (its natural
// deadline), so completion statistics emerge from energy availability
// rather than from an arbitrary cutoff.
package sim

import (
	"fmt"
	"math"

	"origin/internal/comm"
	"origin/internal/fault"

	"origin/internal/host"
	"origin/internal/metrics"
	"origin/internal/obs"
	"origin/internal/schedule"
	"origin/internal/sensor"
	"origin/internal/synth"
)

// SlotSeconds is the scheduler slot length: 250 ms, i.e. four inference
// opportunities per second, comfortably inside the hundreds-of-milliseconds
// activity granularity the paper leverages.
const SlotSeconds = 0.25

// Config describes one simulation run.
type Config struct {
	// Profile is the dataset profile (activities + signatures).
	Profile *synth.Profile
	// User supplies the subject's gait parameters.
	User *synth.User
	// Timeline is the slot-by-slot ground-truth activity stream.
	Timeline *synth.Timeline
	// Nodes are the EH sensor nodes, indexed by id.
	Nodes []*sensor.Node
	// Policy schedules inferences.
	Policy schedule.Policy
	// Host aggregates results.
	Host *host.Device
	// Window is the IMU samples per classification window.
	Window int
	// Seed drives window synthesis during the run.
	Seed int64
	// WarmupSlots excludes the cold-start prefix from accuracy accounting.
	WarmupSlots int
	// NoiseSNRdB, if non-zero, adds white Gaussian noise at this SNR to
	// every sensed window (the Fig. 6 unseen-user protocol).
	NoiseSNRdB float64
	// Comm, if non-nil, models the wireless links explicitly: activation
	// signals travel the downlink and results travel the uplink, both with
	// latency and loss. nil means a perfect, instantaneous network.
	Comm *CommConfig
	// Fault, if non-nil with any non-zero rate, injects deterministic
	// node-level faults (brownouts, harvester stalls, permanent death,
	// reboots) at the start of each slot. Link-level faults (burst loss,
	// corruption, duplication, reordering) are configured per link in Comm.
	Fault *fault.Config
}

// CommConfig bundles the two link models of the body-area network.
type CommConfig struct {
	// Uplink carries sensor results to the host.
	Uplink comm.Config
	// Downlink carries activation signals to the sensors.
	Downlink comm.Config
}

// Result collects everything a run produces.
type Result struct {
	// Confusion is slot-level: every post-warmup slot contributes one
	// (true, predicted) observation of the system output.
	Confusion *metrics.Confusion
	// RoundConfusion scores only ensemble rounds — post-warmup slots in
	// which at least one fresh classification arrived and the host
	// (re-)ran its aggregation. This is the paper's accuracy notion: a
	// classifier is scored on the classifications it performs, not on
	// wall-clock slots where an energy-starved system stays silent.
	RoundConfusion *metrics.Confusion
	// Completion is the per-attempt breakdown grouped by activation round
	// (the Fig. 1 statistic).
	Completion metrics.Completion
	// NodeStats is final telemetry per node.
	NodeStats []sensor.NodeStats
	// Slots is the number of simulated slots.
	Slots int
	// FreshSlots counts post-warmup slots in which at least one fresh
	// result arrived.
	FreshSlots int
	// Truth and Predicted record per-slot ground truth and system output
	// (-1 = no output) for every post-warmup slot, and FreshMask marks the
	// ensemble rounds, enabling downstream analyses (transition splits,
	// adaptation curves) without re-running the simulation.
	Truth, Predicted []int
	FreshMask        []bool
	// Telemetry is the run's event record: inference lifecycle counts,
	// power emergencies, link sends/drops/late deliveries, recall vs fresh
	// votes, adaptation updates and end-of-run in-flight losses, with
	// per-slot tallies.
	Telemetry *obs.Telemetry
}

// Accuracy is shorthand for Result.Confusion.Accuracy().
func (r *Result) Accuracy() float64 { return r.Confusion.Accuracy() }

// PerClass is shorthand for Result.Confusion.PerClass().
func (r *Result) PerClass() []float64 { return r.Confusion.PerClass() }

// RoundAccuracy is shorthand for Result.RoundConfusion.Accuracy().
func (r *Result) RoundAccuracy() float64 { return r.RoundConfusion.Accuracy() }

// Availability is the fraction of post-warmup slots in which the system
// produced an output (Predicted >= 0). Under fault injection with quorum
// gating, degradation shows up here — as honest abstention — rather than
// as unaccounted misclassifications in the accuracy columns.
func (r *Result) Availability() float64 {
	if len(r.Predicted) == 0 {
		return 0
	}
	n := 0
	for _, p := range r.Predicted {
		if p >= 0 {
			n++
		}
	}
	return float64(n) / float64(len(r.Predicted))
}

// RoundPerClass is shorthand for Result.RoundConfusion.PerClass().
func (r *Result) RoundPerClass() []float64 { return r.RoundConfusion.PerClass() }

type attempt struct {
	activated int
	completed int
}

// Run executes the simulation described by cfg.
func Run(cfg Config) *Result {
	validate(&cfg)
	classes := cfg.Profile.NumClasses()
	tele := obs.NewTelemetry(cfg.Timeline.Len())
	res := &Result{
		Confusion:      metrics.NewConfusion(classes),
		RoundConfusion: metrics.NewConfusion(classes),
		Slots:          cfg.Timeline.Len(),
		Telemetry:      tele,
	}
	for _, n := range cfg.Nodes {
		n.Attach(tele)
	}
	cfg.Host.Attach(tele)
	if p, ok := cfg.Policy.(interface{ Attach(*obs.Telemetry) }); ok {
		p.Attach(tele) // e.g. schedule.Supervised's defense counters
	}

	// One window generator per location so signals differ per node but are
	// deterministic given cfg.Seed.
	gens := make([]*synth.Generator, len(cfg.Nodes))
	noiseRngs := make([]*prng, len(cfg.Nodes))
	for i := range cfg.Nodes {
		gens[i] = synth.NewGenerator(cfg.Profile, cfg.User, cfg.Window, cfg.Seed+int64(i)*7919)
		noiseRngs[i] = newPrng(cfg.Seed + 1_000_003 + int64(i))
	}

	traceTick := 0.01
	ticksPerSlot := int(math.Round(SlotSeconds / traceTick))

	// attempts[round key = start slot] tracks Fig. 1 completion grouping.
	attempts := map[int]*attempt{}
	// inflightStart[node] is the slot the node's pending inference started.
	inflightStart := make([]int, len(cfg.Nodes))
	for i := range inflightStart {
		inflightStart[i] = -1
	}

	// bodyRng drives the per-slot whole-body motion state shared by all
	// sensors: one body, one cadence, one effort (see synth.BodyState).
	bodyRng := newPrng(cfg.Seed + 555).r

	// Optional explicit wireless links. The uplink payload carries the
	// slot the result was sent in, so late deliveries (arrival after a
	// slot boundary) are visible in the telemetry.
	var uplink *comm.Link[uplinkMsg]
	var downlink *comm.Link[comm.Activation]
	if cfg.Comm != nil {
		up, down := cfg.Comm.Uplink, cfg.Comm.Downlink
		if up.Seed == 0 {
			up.Seed = cfg.Seed + 17011
		}
		if down.Seed == 0 {
			down.Seed = cfg.Seed + 17021
		}
		uplink = comm.NewLink[uplinkMsg](up)
		downlink = comm.NewLink[comm.Activation](down)
		uplink.Attach(tele, obs.Uplink)
		downlink.Attach(tele, obs.Downlink)
		// Payload corruption is exercised end-to-end through the wire codec:
		// encode, flip one bit, decode, and let the receiver's validation
		// reject what no longer makes sense. The bit index comes from a
		// dedicated stream so installing a corrupter never perturbs the
		// links' own RNG sequences.
		if up.CorruptRate > 0 {
			bits := newPrng(cfg.Seed + 90001).r
			uplink.SetCorrupter(func(m uplinkMsg) uplinkMsg {
				b, err := comm.EncodeResult(comm.WireResult{
					Sensor: m.res.Sensor, Class: m.res.Class,
					Confidence: m.res.Confidence, Seq: m.res.Slot,
				})
				if err != nil {
					return m
				}
				comm.FlipBit(b[:], bits.Intn(len(b)*8))
				w, _ := comm.DecodeResultBytes(b[:])
				damaged := *m.res
				damaged.Sensor, damaged.Class, damaged.Confidence = w.Sensor, w.Class, w.Confidence
				return uplinkMsg{res: &damaged, sentSlot: m.sentSlot}
			})
		}
		if down.CorruptRate > 0 {
			bits := newPrng(cfg.Seed + 90011).r
			downlink.SetCorrupter(func(a comm.Activation) comm.Activation {
				b, err := comm.EncodeActivation(a)
				if err != nil {
					return a
				}
				comm.FlipBit(b[:], bits.Intn(len(b)*8))
				d, _ := comm.DecodeActivationBytes(b[:])
				return d
			})
		}
	}

	// Node-level fault injection: one deterministic draw per node per slot.
	var injector *fault.Injector
	if cfg.Fault.Enabled() {
		inj, err := fault.NewInjector(*cfg.Fault, len(cfg.Nodes))
		if err != nil {
			panic(err.Error())
		}
		injector = inj
	}

	// The active policy learns about accepted fresh results when it asks to
	// (the supervised wrapper's activation-timeout bookkeeping).
	resultObs, _ := cfg.Policy.(schedule.ResultObserver)

	// Monotonic per-sensor acceptance gates: a node's result window slots
	// and its activation slots are both strictly increasing, so anything at
	// or below the watermark is a duplicate (radio retransmit artefact or a
	// reordered stale copy) and is suppressed. On fault-free links the gates
	// never fire.
	lastResultSlot := make([]int, len(cfg.Nodes))
	lastActSlot := make([]int, len(cfg.Nodes))
	for i := range lastResultSlot {
		lastResultSlot[i] = -1
		lastActSlot[i] = -1
	}

	globalTick := 0
	for slot := 0; slot < cfg.Timeline.Len(); slot++ {
		tele.BeginSlot(slot)
		trueAct := cfg.Timeline.PerSlot[slot]
		body := synth.DrawBodyState(bodyRng)

		// Fault injection happens before the policy looks at the network, so
		// a slot's decision sees the world the faults just made.
		if injector != nil {
			for id, ev := range injector.Slot() {
				n := cfg.Nodes[id]
				if !n.Alive() {
					continue
				}
				if ev.Death {
					n.Kill()
					tele.NoteNodeDeath()
					inflightStart[id] = -1
					continue
				}
				if ev.Reboot {
					n.Reboot()
					tele.NoteNodeReboot()
					inflightStart[id] = -1
				}
				if ev.Brownout {
					n.Brownout()
					tele.NoteBrownout()
				}
				if ev.StallSlots > 0 {
					n.StallHarvest(globalTick + ev.StallSlots*ticksPerSlot)
					tele.NoteHarvesterStall()
				}
			}
		}

		// Policy decision at slot start.
		ctx := &schedule.Context{
			Slot:        slot,
			NumSensors:  len(cfg.Nodes),
			Anticipated: cfg.Host.Anticipated(),
			CanAfford: func(s int) bool {
				return cfg.Nodes[s].CanAfford()
			},
			OracleActivity: trueAct,
			StoreFraction: func(s int) float64 {
				return cfg.Nodes[s].Capacitor().Stored() / cfg.Nodes[s].Capacitor().CapacityJ
			},
		}
		startNode := func(id, startSlot, act int, st synth.BodyState) {
			n := cfg.Nodes[id]
			// Starting a new inference aborts an unfinished one (its round
			// stays marked incomplete).
			w := gens[id].WindowWithState(act, n.Location(), st)
			if cfg.NoiseSNRdB != 0 {
				synth.AddNoiseSNR(w, cfg.NoiseSNRdB, noiseRngs[id].r)
			}
			n.StartInference(w, startSlot, act)
			inflightStart[id] = startSlot
		}
		for _, id := range cfg.Policy.Decide(ctx) {
			a := attempts[slot]
			if a == nil {
				a = &attempt{}
				attempts[slot] = a
			}
			a.activated++
			if downlink != nil {
				// The activation signal rides the lossy downlink; a dropped
				// signal is one of the paper's coordination failures — the
				// sensor simply never starts.
				downlink.Send(globalTick, comm.Activation{Sensor: id, Slot: slot})
				continue
			}
			startNode(id, slot, trueAct, body)
		}

		// Sub-tick integration.
		freshThisSlot := false
		for t := 0; t < ticksPerSlot; t++ {
			if downlink != nil {
				for _, act := range downlink.Deliver(globalTick) {
					// A corrupted activation that names an unknown sensor or
					// a slot that has not happened yet is rejected, not
					// panicked on; a duplicate or stale copy (at or below the
					// sensor's activation watermark) is suppressed.
					if act.Validate(len(cfg.Nodes)) != nil || act.Slot > slot {
						tele.NoteRejected(obs.Downlink)
						continue
					}
					if act.Slot <= lastActSlot[act.Sensor] {
						tele.NoteDupDropped(obs.Downlink)
						continue
					}
					lastActSlot[act.Sensor] = act.Slot
					// The activation arrives a little late: the sensor
					// samples the activity as it is *now*, but the attempt
					// stays credited to the round that decided it
					// (act.Slot), so a delivery that slips past a slot
					// boundary does not misattribute its completion.
					if act.Slot < slot {
						tele.NoteLate(obs.Downlink)
					}
					startNode(act.Sensor, act.Slot, trueAct, body)
				}
			}
			for id, n := range cfg.Nodes {
				r := n.Tick(globalTick, traceTick)
				if r == nil {
					continue
				}
				if a := attempts[r.Slot]; a != nil {
					a.completed++
				}
				inflightStart[id] = -1
				if uplink != nil {
					uplink.Send(globalTick, uplinkMsg{res: r, sentSlot: slot})
					continue
				}
				deliverResult(cfg.Host, r, slot)
				if resultObs != nil {
					resultObs.NoteResult(r.Sensor)
				}
				freshThisSlot = true
			}
			if uplink != nil {
				for _, m := range uplink.Deliver(globalTick) {
					// A corrupted result that decodes to an unknown sensor
					// or class is rejected, not panicked on; a duplicate or
					// reordered stale copy (window slot at or below the
					// sensor's watermark) is suppressed.
					w := comm.WireResult{Sensor: m.res.Sensor, Class: m.res.Class}
					if w.Validate(len(cfg.Nodes), classes) != nil {
						tele.NoteRejected(obs.Uplink)
						continue
					}
					if m.res.Slot <= lastResultSlot[m.res.Sensor] {
						tele.NoteDupDropped(obs.Uplink)
						continue
					}
					lastResultSlot[m.res.Sensor] = m.res.Slot
					if m.sentSlot < slot {
						tele.NoteLate(obs.Uplink)
					}
					deliverResult(cfg.Host, m.res, slot)
					if resultObs != nil {
						resultObs.NoteResult(m.res.Sensor)
					}
					freshThisSlot = true
				}
			}
			globalTick++
		}

		// System output for this slot. Each received result moves the
		// anticipation as it arrives (§III-B), and the fused ensemble
		// opinion then overrides it: NoteFinal breaks the self-reinforcing
		// loop where a weak sensor keeps nominating itself for the
		// activity it keeps (mis)detecting.
		final := cfg.Host.Classify(slot)
		cfg.Host.NoteFinal(final)
		if freshThisSlot {
			cfg.Host.Adapt(slot, final)
		}
		if slot >= cfg.WarmupSlots {
			res.Confusion.Add(trueAct, final)
			res.Truth = append(res.Truth, trueAct)
			res.Predicted = append(res.Predicted, final)
			res.FreshMask = append(res.FreshMask, freshThisSlot)
			if freshThisSlot {
				res.RoundConfusion.Add(trueAct, final)
				res.FreshSlots++
			}
		}
	}

	// Account for everything still in flight when the timeline ends: these
	// results and activations are lost (their attempt rounds stay
	// incomplete), and the telemetry makes that loss visible instead of
	// silently folding it into the failure rate.
	if uplink != nil {
		tele.NoteDiscardedResults(uplink.Pending())
	}
	if downlink != nil {
		tele.NoteDiscardedActivations(downlink.Pending())
	}
	for _, n := range cfg.Nodes {
		if n.Busy() {
			tele.NoteAbandonedInference()
		}
	}

	for _, a := range attempts {
		res.Completion.Record(a.activated, a.completed)
	}
	for _, n := range cfg.Nodes {
		res.NodeStats = append(res.NodeStats, n.Stats())
	}
	return res
}

// uplinkMsg is the uplink payload: the sensor result plus the slot it
// was sent in, so deliveries that slip past a slot boundary can be
// counted as late.
type uplinkMsg struct {
	res      *sensor.Result
	sentSlot int
}

// deliverResult hands a sensor result to the host stamped with its arrival
// slot: freshness and recall ageing are relative to arrival, not to the
// window the inference classified.
func deliverResult(h *host.Device, r *sensor.Result, arrivalSlot int) {
	hr := *r
	hr.Slot = arrivalSlot
	h.Observe(&hr)
}

func validate(cfg *Config) {
	switch {
	case cfg.Profile == nil:
		panic("sim: Config.Profile is required")
	case cfg.User == nil:
		panic("sim: Config.User is required")
	case cfg.Timeline == nil || cfg.Timeline.Len() == 0:
		panic("sim: Config.Timeline is required")
	case len(cfg.Nodes) == 0:
		panic("sim: Config.Nodes is required")
	case cfg.Policy == nil:
		panic("sim: Config.Policy is required")
	case cfg.Host == nil:
		panic("sim: Config.Host is required")
	case cfg.Window <= 0:
		panic(fmt.Sprintf("sim: invalid window %d", cfg.Window))
	}
}

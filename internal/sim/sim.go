// Package sim is the discrete-time simulator that binds everything
// together: an activity timeline drives what the IMUs sense, a harvesting
// trace drives what the capacitors store, a scheduling policy decides which
// node infers in each slot, the NVP model executes those inferences
// intermittently, and the host aggregates results into the system's per-slot
// classification.
//
// Time is organised in scheduler slots of SlotSeconds, subdivided into the
// harvesting trace's tick (10 ms): within every tick each node harvests and
// (if busy) computes. A node's in-flight inference survives slot boundaries
// — it is aborted only when the policy re-activates that node (its natural
// deadline), so completion statistics emerge from energy availability
// rather than from an arbitrary cutoff.
package sim

import (
	"fmt"
	"math"

	"origin/internal/comm"

	"origin/internal/host"
	"origin/internal/metrics"
	"origin/internal/obs"
	"origin/internal/schedule"
	"origin/internal/sensor"
	"origin/internal/synth"
)

// SlotSeconds is the scheduler slot length: 250 ms, i.e. four inference
// opportunities per second, comfortably inside the hundreds-of-milliseconds
// activity granularity the paper leverages.
const SlotSeconds = 0.25

// Config describes one simulation run.
type Config struct {
	// Profile is the dataset profile (activities + signatures).
	Profile *synth.Profile
	// User supplies the subject's gait parameters.
	User *synth.User
	// Timeline is the slot-by-slot ground-truth activity stream.
	Timeline *synth.Timeline
	// Nodes are the EH sensor nodes, indexed by id.
	Nodes []*sensor.Node
	// Policy schedules inferences.
	Policy schedule.Policy
	// Host aggregates results.
	Host *host.Device
	// Window is the IMU samples per classification window.
	Window int
	// Seed drives window synthesis during the run.
	Seed int64
	// WarmupSlots excludes the cold-start prefix from accuracy accounting.
	WarmupSlots int
	// NoiseSNRdB, if non-zero, adds white Gaussian noise at this SNR to
	// every sensed window (the Fig. 6 unseen-user protocol).
	NoiseSNRdB float64
	// Comm, if non-nil, models the wireless links explicitly: activation
	// signals travel the downlink and results travel the uplink, both with
	// latency and loss. nil means a perfect, instantaneous network.
	Comm *CommConfig
}

// CommConfig bundles the two link models of the body-area network.
type CommConfig struct {
	// Uplink carries sensor results to the host.
	Uplink comm.Config
	// Downlink carries activation signals to the sensors.
	Downlink comm.Config
}

// Result collects everything a run produces.
type Result struct {
	// Confusion is slot-level: every post-warmup slot contributes one
	// (true, predicted) observation of the system output.
	Confusion *metrics.Confusion
	// RoundConfusion scores only ensemble rounds — post-warmup slots in
	// which at least one fresh classification arrived and the host
	// (re-)ran its aggregation. This is the paper's accuracy notion: a
	// classifier is scored on the classifications it performs, not on
	// wall-clock slots where an energy-starved system stays silent.
	RoundConfusion *metrics.Confusion
	// Completion is the per-attempt breakdown grouped by activation round
	// (the Fig. 1 statistic).
	Completion metrics.Completion
	// NodeStats is final telemetry per node.
	NodeStats []sensor.NodeStats
	// Slots is the number of simulated slots.
	Slots int
	// FreshSlots counts post-warmup slots in which at least one fresh
	// result arrived.
	FreshSlots int
	// Truth and Predicted record per-slot ground truth and system output
	// (-1 = no output) for every post-warmup slot, and FreshMask marks the
	// ensemble rounds, enabling downstream analyses (transition splits,
	// adaptation curves) without re-running the simulation.
	Truth, Predicted []int
	FreshMask        []bool
	// Telemetry is the run's event record: inference lifecycle counts,
	// power emergencies, link sends/drops/late deliveries, recall vs fresh
	// votes, adaptation updates and end-of-run in-flight losses, with
	// per-slot tallies.
	Telemetry *obs.Telemetry
}

// Accuracy is shorthand for Result.Confusion.Accuracy().
func (r *Result) Accuracy() float64 { return r.Confusion.Accuracy() }

// PerClass is shorthand for Result.Confusion.PerClass().
func (r *Result) PerClass() []float64 { return r.Confusion.PerClass() }

// RoundAccuracy is shorthand for Result.RoundConfusion.Accuracy().
func (r *Result) RoundAccuracy() float64 { return r.RoundConfusion.Accuracy() }

// RoundPerClass is shorthand for Result.RoundConfusion.PerClass().
func (r *Result) RoundPerClass() []float64 { return r.RoundConfusion.PerClass() }

type attempt struct {
	activated int
	completed int
}

// Run executes the simulation described by cfg.
func Run(cfg Config) *Result {
	validate(&cfg)
	classes := cfg.Profile.NumClasses()
	tele := obs.NewTelemetry(cfg.Timeline.Len())
	res := &Result{
		Confusion:      metrics.NewConfusion(classes),
		RoundConfusion: metrics.NewConfusion(classes),
		Slots:          cfg.Timeline.Len(),
		Telemetry:      tele,
	}
	for _, n := range cfg.Nodes {
		n.Attach(tele)
	}
	cfg.Host.Attach(tele)

	// One window generator per location so signals differ per node but are
	// deterministic given cfg.Seed.
	gens := make([]*synth.Generator, len(cfg.Nodes))
	noiseRngs := make([]*prng, len(cfg.Nodes))
	for i := range cfg.Nodes {
		gens[i] = synth.NewGenerator(cfg.Profile, cfg.User, cfg.Window, cfg.Seed+int64(i)*7919)
		noiseRngs[i] = newPrng(cfg.Seed + 1_000_003 + int64(i))
	}

	traceTick := 0.01
	ticksPerSlot := int(math.Round(SlotSeconds / traceTick))

	// attempts[round key = start slot] tracks Fig. 1 completion grouping.
	attempts := map[int]*attempt{}
	// inflightStart[node] is the slot the node's pending inference started.
	inflightStart := make([]int, len(cfg.Nodes))
	for i := range inflightStart {
		inflightStart[i] = -1
	}

	// bodyRng drives the per-slot whole-body motion state shared by all
	// sensors: one body, one cadence, one effort (see synth.BodyState).
	bodyRng := newPrng(cfg.Seed + 555).r

	// Optional explicit wireless links. The uplink payload carries the
	// slot the result was sent in, so late deliveries (arrival after a
	// slot boundary) are visible in the telemetry.
	var uplink *comm.Link[uplinkMsg]
	var downlink *comm.Link[comm.Activation]
	if cfg.Comm != nil {
		up, down := cfg.Comm.Uplink, cfg.Comm.Downlink
		if up.Seed == 0 {
			up.Seed = cfg.Seed + 17011
		}
		if down.Seed == 0 {
			down.Seed = cfg.Seed + 17021
		}
		uplink = comm.NewLink[uplinkMsg](up)
		downlink = comm.NewLink[comm.Activation](down)
		uplink.Attach(tele, obs.Uplink)
		downlink.Attach(tele, obs.Downlink)
	}

	globalTick := 0
	for slot := 0; slot < cfg.Timeline.Len(); slot++ {
		tele.BeginSlot(slot)
		trueAct := cfg.Timeline.PerSlot[slot]
		body := synth.DrawBodyState(bodyRng)

		// Policy decision at slot start.
		ctx := &schedule.Context{
			Slot:        slot,
			NumSensors:  len(cfg.Nodes),
			Anticipated: cfg.Host.Anticipated(),
			CanAfford: func(s int) bool {
				return cfg.Nodes[s].CanAfford()
			},
			OracleActivity: trueAct,
			StoreFraction: func(s int) float64 {
				return cfg.Nodes[s].Capacitor().Stored() / cfg.Nodes[s].Capacitor().CapacityJ
			},
		}
		startNode := func(id, startSlot, act int, st synth.BodyState) {
			n := cfg.Nodes[id]
			// Starting a new inference aborts an unfinished one (its round
			// stays marked incomplete).
			w := gens[id].WindowWithState(act, n.Location(), st)
			if cfg.NoiseSNRdB != 0 {
				synth.AddNoiseSNR(w, cfg.NoiseSNRdB, noiseRngs[id].r)
			}
			n.StartInference(w, startSlot, act)
			inflightStart[id] = startSlot
		}
		for _, id := range cfg.Policy.Decide(ctx) {
			a := attempts[slot]
			if a == nil {
				a = &attempt{}
				attempts[slot] = a
			}
			a.activated++
			if downlink != nil {
				// The activation signal rides the lossy downlink; a dropped
				// signal is one of the paper's coordination failures — the
				// sensor simply never starts.
				downlink.Send(globalTick, comm.Activation{Sensor: id, Slot: slot})
				continue
			}
			startNode(id, slot, trueAct, body)
		}

		// Sub-tick integration.
		freshThisSlot := false
		for t := 0; t < ticksPerSlot; t++ {
			if downlink != nil {
				for _, act := range downlink.Deliver(globalTick) {
					// The activation arrives a little late: the sensor
					// samples the activity as it is *now*, but the attempt
					// stays credited to the round that decided it
					// (act.Slot), so a delivery that slips past a slot
					// boundary does not misattribute its completion.
					if act.Slot < slot {
						tele.NoteLate(obs.Downlink)
					}
					startNode(act.Sensor, act.Slot, trueAct, body)
				}
			}
			for id, n := range cfg.Nodes {
				r := n.Tick(globalTick, traceTick)
				if r == nil {
					continue
				}
				if a := attempts[r.Slot]; a != nil {
					a.completed++
				}
				inflightStart[id] = -1
				if uplink != nil {
					uplink.Send(globalTick, uplinkMsg{res: r, sentSlot: slot})
					continue
				}
				deliverResult(cfg.Host, r, slot)
				freshThisSlot = true
			}
			if uplink != nil {
				for _, m := range uplink.Deliver(globalTick) {
					if m.sentSlot < slot {
						tele.NoteLate(obs.Uplink)
					}
					deliverResult(cfg.Host, m.res, slot)
					freshThisSlot = true
				}
			}
			globalTick++
		}

		// System output for this slot. Each received result moves the
		// anticipation as it arrives (§III-B), and the fused ensemble
		// opinion then overrides it: NoteFinal breaks the self-reinforcing
		// loop where a weak sensor keeps nominating itself for the
		// activity it keeps (mis)detecting.
		final := cfg.Host.Classify(slot)
		cfg.Host.NoteFinal(final)
		if freshThisSlot {
			cfg.Host.Adapt(slot, final)
		}
		if slot >= cfg.WarmupSlots {
			res.Confusion.Add(trueAct, final)
			res.Truth = append(res.Truth, trueAct)
			res.Predicted = append(res.Predicted, final)
			res.FreshMask = append(res.FreshMask, freshThisSlot)
			if freshThisSlot {
				res.RoundConfusion.Add(trueAct, final)
				res.FreshSlots++
			}
		}
	}

	// Account for everything still in flight when the timeline ends: these
	// results and activations are lost (their attempt rounds stay
	// incomplete), and the telemetry makes that loss visible instead of
	// silently folding it into the failure rate.
	if uplink != nil {
		tele.NoteDiscardedResults(uplink.Pending())
	}
	if downlink != nil {
		tele.NoteDiscardedActivations(downlink.Pending())
	}
	for _, n := range cfg.Nodes {
		if n.Busy() {
			tele.NoteAbandonedInference()
		}
	}

	for _, a := range attempts {
		res.Completion.Record(a.activated, a.completed)
	}
	for _, n := range cfg.Nodes {
		res.NodeStats = append(res.NodeStats, n.Stats())
	}
	return res
}

// uplinkMsg is the uplink payload: the sensor result plus the slot it
// was sent in, so deliveries that slip past a slot boundary can be
// counted as late.
type uplinkMsg struct {
	res      *sensor.Result
	sentSlot int
}

// deliverResult hands a sensor result to the host stamped with its arrival
// slot: freshness and recall ageing are relative to arrival, not to the
// window the inference classified.
func deliverResult(h *host.Device, r *sensor.Result, arrivalSlot int) {
	hr := *r
	hr.Slot = arrivalSlot
	h.Observe(&hr)
}

func validate(cfg *Config) {
	switch {
	case cfg.Profile == nil:
		panic("sim: Config.Profile is required")
	case cfg.User == nil:
		panic("sim: Config.User is required")
	case cfg.Timeline == nil || cfg.Timeline.Len() == 0:
		panic("sim: Config.Timeline is required")
	case len(cfg.Nodes) == 0:
		panic("sim: Config.Nodes is required")
	case cfg.Policy == nil:
		panic("sim: Config.Policy is required")
	case cfg.Host == nil:
		panic("sim: Config.Host is required")
	case cfg.Window <= 0:
		panic(fmt.Sprintf("sim: invalid window %d", cfg.Window))
	}
}

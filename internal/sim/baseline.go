package sim

import (
	"math/rand"

	"origin/internal/dnn"
	"origin/internal/host"
	"origin/internal/metrics"
	"origin/internal/obs"
	"origin/internal/sensor"
	"origin/internal/synth"
)

// prng wraps math/rand for per-node noise streams.
type prng struct{ r *rand.Rand }

func newPrng(seed int64) *prng { return &prng{r: rand.New(rand.NewSource(seed))} }

// BaselineConfig describes a fully-powered reference run: every sensor
// classifies every slot (steady power source, no energy constraints) and
// the host fuses the three fresh votes. This is how the paper's Baseline-1
// (unpruned nets) and Baseline-2 (pruned nets) are evaluated.
type BaselineConfig struct {
	// Profile, User, Timeline, Window and Seed have the same meaning as in
	// Config.
	Profile  *synth.Profile
	User     *synth.User
	Timeline *synth.Timeline
	Window   int
	Seed     int64
	// Nets holds one classifier per location, indexed by synth.Location.
	Nets []*dnn.Network
	// Host aggregates the per-slot votes (typically AggMajority; the
	// ablations also run AggWeighted baselines).
	Host *host.Device
	// NoiseSNRdB optionally corrupts the sensed windows (Fig. 6 protocol).
	NoiseSNRdB float64
	// WarmupSlots excludes the prefix from accounting (kept for symmetry
	// with Run; baselines have no cold start).
	WarmupSlots int
}

// RunBaseline evaluates a fully-powered system over the timeline.
func RunBaseline(cfg BaselineConfig) *Result {
	if cfg.Profile == nil || cfg.User == nil || cfg.Timeline == nil || cfg.Host == nil {
		panic("sim: incomplete BaselineConfig")
	}
	if len(cfg.Nets) != synth.NumLocations {
		panic("sim: BaselineConfig.Nets must hold one net per location")
	}
	classes := cfg.Profile.NumClasses()
	tele := obs.NewTelemetry(cfg.Timeline.Len())
	res := &Result{
		Confusion:      metrics.NewConfusion(classes),
		RoundConfusion: metrics.NewConfusion(classes),
		Slots:          cfg.Timeline.Len(),
		Telemetry:      tele,
	}
	cfg.Host.Attach(tele)
	gens := make([]*synth.Generator, synth.NumLocations)
	noise := make([]*prng, synth.NumLocations)
	for i := range gens {
		gens[i] = synth.NewGenerator(cfg.Profile, cfg.User, cfg.Window, cfg.Seed+int64(i)*7919)
		noise[i] = newPrng(cfg.Seed + 1_000_003 + int64(i))
	}
	bodyRng := newPrng(cfg.Seed + 555).r
	for slot := 0; slot < cfg.Timeline.Len(); slot++ {
		tele.BeginSlot(slot)
		trueAct := cfg.Timeline.PerSlot[slot]
		body := synth.DrawBodyState(bodyRng)
		for _, loc := range synth.Locations() {
			w := gens[loc].WindowWithState(trueAct, loc, body)
			if cfg.NoiseSNRdB != 0 {
				synth.AddNoiseSNR(w, cfg.NoiseSNRdB, noise[loc].r)
			}
			tele.NoteInferenceStarted()
			class, probs := cfg.Nets[loc].Predict(w)
			tele.NoteInferenceCompleted()
			cfg.Host.Observe(&sensor.Result{
				Sensor:     int(loc),
				Class:      class,
				Confidence: probs.Variance(),
				Slot:       slot,
				TrueClass:  trueAct,
			})
		}
		final := cfg.Host.Classify(slot)
		cfg.Host.NoteFinal(final)
		cfg.Host.Adapt(slot, final)
		if slot >= cfg.WarmupSlots {
			res.Confusion.Add(trueAct, final)
			res.RoundConfusion.Add(trueAct, final)
			res.Truth = append(res.Truth, trueAct)
			res.Predicted = append(res.Predicted, final)
			res.FreshMask = append(res.FreshMask, true)
			res.FreshSlots++
		}
		res.Completion.Record(synth.NumLocations, synth.NumLocations)
	}
	return res
}

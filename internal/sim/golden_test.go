package sim

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"testing"

	"origin/internal/comm"
	"origin/internal/host"
	"origin/internal/schedule"
	"origin/internal/synth"
)

// goldenHash condenses a run's observable outputs into one digest: per-slot
// truth/prediction/freshness, the completion rounds, node counters and the
// core telemetry counters. Any behavioural change to the simulation shows up
// as a different digest.
func goldenHash(res *Result) string {
	h := sha256.New()
	wi := func(v int) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], uint64(int64(v)))
		h.Write(b[:])
	}
	for i := range res.Truth {
		wi(res.Truth[i])
		wi(res.Predicted[i])
		if res.FreshMask[i] {
			wi(1)
		} else {
			wi(0)
		}
	}
	wi(res.FreshSlots)
	wi(res.Slots)
	for _, st := range res.NodeStats {
		wi(st.Started)
		wi(st.Completed)
		wi(st.DeadlineMiss)
		wi(st.RadioMsgs)
	}
	t := res.Telemetry
	wi(t.InferencesStarted)
	wi(t.InferencesAborted)
	wi(t.InferencesCompleted)
	wi(t.PowerEmergencies)
	wi(t.Uplink.Sent)
	wi(t.Uplink.Dropped)
	wi(t.Uplink.Delivered)
	wi(t.Uplink.Late)
	wi(t.Downlink.Sent)
	wi(t.Downlink.Dropped)
	wi(t.Downlink.Delivered)
	wi(t.Downlink.Late)
	wi(t.FreshVotes)
	wi(t.RecallVotes)
	return hex.EncodeToString(h.Sum(nil))
}

// goldenRun executes the pinned reference configuration: an RR6 majority
// ensemble on a constrained supply, once with a perfect network and once
// with lossy+delayed links.
func goldenRun(t *testing.T, withComm bool) *Result {
	f := getFixture(t)
	tl := smallTimeline(f.profile, 300, 41)
	nodes := nodesWith(f, 400e-6)
	h := host.New(host.Config{Sensors: 3, Classes: f.profile.NumClasses(), Recall: true, Agg: host.AggMajority})
	cfg := Config{
		Profile: f.profile, User: synth.NewUser(0), Timeline: tl,
		Nodes: nodes, Policy: schedule.NewExtendedRoundRobin(6, 3), Host: h,
		Window: testWindow, Seed: 42, WarmupSlots: 12,
	}
	if withComm {
		cfg.Comm = &CommConfig{
			Uplink:   comm.Config{LatencyTicks: 2, DropRate: 0.2},
			Downlink: comm.Config{LatencyTicks: 2, DropRate: 0.1},
		}
	}
	return Run(cfg)
}

// TestGoldenNoFaultByteIdentical pins the simulator's output with every
// fault injector disabled to the pre-fault-layer digests: adding the fault
// subsystem must not change a single prediction, drop decision or counter
// of a fault-free run.
func TestGoldenNoFaultByteIdentical(t *testing.T) {
	// Digests recorded on the pre-fault-layer tree (PR 1 head); see
	// CHANGES.md. Re-record only for a deliberate simulation change.
	const (
		wantPerfect = "4a4264417bfc252900a4dd78855a255b23084109466577e2da0025b037408e04"
		wantLossy   = "920a1c00cd294d6c0eccfcaa27ea3c57a4a0415d9e2a21e38d05d4c223bde687"
	)
	if got := goldenHash(goldenRun(t, false)); got != wantPerfect {
		t.Errorf("perfect-network golden digest = %s, want %s", got, wantPerfect)
	}
	if got := goldenHash(goldenRun(t, true)); got != wantLossy {
		t.Errorf("lossy-network golden digest = %s, want %s", got, wantLossy)
	}
}

package sim

import (
	"testing"

	"origin/internal/comm"
	"origin/internal/fault"
	"origin/internal/host"
	"origin/internal/obs"
	"origin/internal/schedule"
	"origin/internal/synth"
)

// TestInjectedFaultsVisibleInTelemetry pins the accounting contract: every
// node fault the injector fires (gated on the node still being alive, as the
// sim gates them) appears in Result.Telemetry.Faults, and the link-level
// fault injectors tally per direction.
func TestInjectedFaultsVisibleInTelemetry(t *testing.T) {
	f := getFixture(t)
	fc := &fault.Config{
		BrownoutPerSlot: 0.02, StallPerSlot: 0.01,
		DeathPerSlot: 0.005, RebootPerSlot: 0.01, Seed: 41,
	}
	tl := smallTimeline(f.profile, 300, 41)
	nodes := nodesWith(f, 10e-3)
	h := host.New(host.Config{Sensors: 3, Classes: f.profile.NumClasses(), Recall: true, Agg: host.AggMajority})
	res := Run(Config{
		Profile: f.profile, User: synth.NewUser(0), Timeline: tl,
		Nodes: nodes, Policy: schedule.NaiveAll{N: 3}, Host: h,
		Window: testWindow, Seed: 42, WarmupSlots: 10,
		Fault: fc,
		Comm: &CommConfig{
			Uplink:   comm.Config{LatencyTicks: 2, CorruptRate: 0.4, DupRate: 0.3, ReorderRate: 0.3},
			Downlink: comm.Config{LatencyTicks: 2, DupRate: 0.3},
		},
	})

	// Replay the injector's deterministic schedule with the same alive
	// gating the sim applies, and demand exact agreement.
	in, err := fault.NewInjector(*fc, 3)
	if err != nil {
		t.Fatalf("NewInjector: %v", err)
	}
	alive := []bool{true, true, true}
	var want obs.FaultCounts
	for s := 0; s < res.Slots; s++ {
		for id, ev := range in.Slot() {
			if !alive[id] {
				continue
			}
			if ev.Death {
				alive[id] = false
				want.NodeDeaths++
				continue
			}
			if ev.Reboot {
				want.NodeReboots++
			}
			if ev.Brownout {
				want.Brownouts++
			}
			if ev.StallSlots > 0 {
				want.HarvesterStalls++
			}
		}
	}
	got := res.Telemetry.Faults
	if got.Brownouts != want.Brownouts || got.HarvesterStalls != want.HarvesterStalls ||
		got.NodeDeaths != want.NodeDeaths || got.NodeReboots != want.NodeReboots {
		t.Fatalf("telemetry faults %+v, schedule replay wants brownouts=%d stalls=%d deaths=%d reboots=%d",
			got, want.Brownouts, want.HarvesterStalls, want.NodeDeaths, want.NodeReboots)
	}
	// The test is vacuous unless every class actually fired at this seed.
	if want.Brownouts == 0 || want.HarvesterStalls == 0 || want.NodeDeaths == 0 || want.NodeReboots == 0 {
		t.Fatalf("fault classes missing from the schedule (adjust seed/rates): %+v", want)
	}
	// Per-slot fault tallies must sum to the injected total.
	perSlot := 0
	for _, s := range res.Telemetry.PerSlot {
		perSlot += int(s.Faults)
	}
	if perSlot != got.Injected() {
		t.Fatalf("per-slot fault tallies sum to %d, cumulative says %d", perSlot, got.Injected())
	}

	// Link-level injections and the defenses they triggered are visible too:
	// corrupted payloads that decode invalid get rejected, duplicate copies
	// get suppressed by the monotonic gate.
	up, down := res.Telemetry.Uplink, res.Telemetry.Downlink
	if up.Corrupted == 0 || up.Duplicated == 0 || up.Reordered == 0 {
		t.Fatalf("uplink fault injections not all visible: %+v", up)
	}
	if up.Rejected == 0 {
		t.Fatal("no corrupted uplink payload was ever rejected")
	}
	if up.DupDropped == 0 {
		t.Fatal("no duplicated uplink result was ever suppressed")
	}
	if down.Duplicated == 0 || down.DupDropped == 0 {
		t.Fatalf("downlink duplication not visible: %+v", down)
	}
}

// TestAvailabilityDegradesMonotonicallyWithDeathRate is the degradation
// contract: at a fixed fault seed, raising the death rate only adds deaths
// (superset schedules), so quorum-gated availability falls monotonically and
// the loss shows up as honest abstention (-1), never as unaccounted
// misclassifications.
func TestAvailabilityDegradesMonotonicallyWithDeathRate(t *testing.T) {
	f := getFixture(t)
	run := func(rate float64) *Result {
		tl := smallTimeline(f.profile, 300, 43)
		nodes := nodesWith(f, 10e-3)
		h := host.New(host.Config{
			Sensors: 3, Classes: f.profile.NumClasses(),
			Recall: true, Agg: host.AggMajority, StaleLimit: 8, Quorum: 2,
		})
		var fc *fault.Config
		if rate > 0 {
			fc = &fault.Config{DeathPerSlot: rate, Seed: 47}
		}
		return Run(Config{
			Profile: f.profile, User: synth.NewUser(0), Timeline: tl,
			Nodes: nodes, Policy: schedule.NaiveAll{N: 3}, Host: h,
			Window: testWindow, Seed: 44, WarmupSlots: 10, Fault: fc,
		})
	}
	rates := []float64{0, 0.002, 0.01, 0.05}
	var avails []float64
	var last *Result
	for _, rate := range rates {
		last = run(rate)
		avails = append(avails, last.Availability())
	}
	for i := 1; i < len(avails); i++ {
		if avails[i] > avails[i-1] {
			t.Fatalf("availability rose with death rate: %v at rates %v", avails, rates)
		}
	}
	if avails[0] < 0.99 {
		t.Fatalf("fault-free availability = %v, want ≈1", avails[0])
	}
	if avails[len(avails)-1] >= avails[0] {
		t.Fatalf("availability never degraded: %v", avails)
	}
	// At the highest rate all nodes die: the gap is abstention, not guesses.
	abstained := 0
	for _, p := range last.Predicted {
		if p == -1 {
			abstained++
		}
	}
	if abstained == 0 {
		t.Fatal("no abstentions at the highest death rate")
	}
	if last.Telemetry.Faults.QuorumAbstentions < abstained {
		t.Fatalf("quorum abstention counter %d < abstained slots %d",
			last.Telemetry.Faults.QuorumAbstentions, abstained)
	}
}

// TestSupervisedDefensesEngageInSim runs the supervised wrapper end-to-end:
// with node 0 dead from the start, its activations time out, get retried,
// fall back to healthy nodes, and the node is eventually masked and probed —
// all visible in the run telemetry — while the system stays available.
func TestSupervisedDefensesEngageInSim(t *testing.T) {
	f := getFixture(t)
	tl := smallTimeline(f.profile, 200, 45)
	nodes := nodesWith(f, 10e-3)
	nodes[0].Kill()
	h := host.New(host.Config{
		Sensors: 3, Classes: f.profile.NumClasses(),
		Recall: true, Agg: host.AggMajority, StaleLimit: 8,
	})
	pol := schedule.NewSupervised(schedule.NewExtendedRoundRobin(6, 3), 3, nil, fault.DefenseConfig{
		ActivationTimeoutSlots: 2, MaxRetries: 1, MaskAfter: 2, ProbeEvery: 8,
	})
	res := Run(Config{
		Profile: f.profile, User: synth.NewUser(0), Timeline: tl,
		Nodes: nodes, Policy: pol, Host: h,
		Window: testWindow, Seed: 46, WarmupSlots: 12,
	})
	fa := res.Telemetry.Faults
	if fa.ActivationRetries == 0 {
		t.Fatal("dead node's activations were never retried")
	}
	if fa.ActivationFallbacks == 0 {
		t.Fatal("dead node's activations never fell back to a healthy node")
	}
	if fa.NodesMasked != 1 {
		t.Fatalf("masked transitions = %d, want 1 (node 0)", fa.NodesMasked)
	}
	if fa.MaskProbes == 0 {
		t.Fatal("masked node was never probed")
	}
	if !pol.Masked(0) {
		t.Fatal("node 0 not masked at end of run")
	}
	// The healthy nodes keep the system available throughout.
	if res.Availability() < 0.9 {
		t.Fatalf("availability with defenses = %v, want >= 0.9", res.Availability())
	}
}

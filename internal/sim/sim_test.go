package sim

import (
	"math/rand"
	"sync"
	"testing"

	"origin/internal/comm"
	"origin/internal/dataset"
	"origin/internal/dnn"
	"origin/internal/energy"
	"origin/internal/ensemble"
	"origin/internal/host"
	"origin/internal/schedule"
	"origin/internal/sensor"
	"origin/internal/synth"
)

const testWindow = 64

// fixture holds a small trained 3-sensor system shared by all sim tests.
type fixture struct {
	profile  *synth.Profile
	nets     []*dnn.Network
	matrix   *ensemble.Matrix
	accTable [][]float64
	perNet   []float64 // per-net overall test accuracy
}

var (
	fixOnce sync.Once
	fix     *fixture
)

func getFixture(t *testing.T) *fixture {
	t.Helper()
	fixOnce.Do(func() {
		p := synth.MHEALTHProfile()
		f := &fixture{profile: p}
		var testSets [][]dnn.Sample
		for _, loc := range synth.Locations() {
			samples := dataset.Make(dataset.Config{
				Profile: p, User: synth.NewUser(0), Location: loc,
				PerClass: 50, Window: testWindow, Seed: 100 + int64(loc),
			})
			train, test := dataset.Split(samples, 0.75, 5)
			rng := rand.New(rand.NewSource(200 + int64(loc)))
			net := dnn.NewHARNetwork(rng, dnn.HARConfig{
				Channels: synth.Channels, Window: testWindow, Classes: p.NumClasses(),
				Conv1Out: 6, Conv2Out: 8, Kernel: 5, Pool: 2, Hidden: 16,
			})
			cfg := dnn.DefaultTrainConfig()
			cfg.Epochs = 22
			dnn.Train(net, train, cfg)
			f.nets = append(f.nets, net)
			testSets = append(testSets, test)
			f.perNet = append(f.perNet, dnn.Evaluate(net, test))
		}
		f.matrix = ensemble.BuildMatrix(f.nets, testSets, p.NumClasses())
		f.accTable = ensemble.BuildAccuracyTable(f.nets, testSets, p.NumClasses())
		fix = f
	})
	return fix
}

func flatTrace(powerW float64) *energy.Trace {
	tr := &energy.Trace{Tick: 0.01, Power: make([]float64, 1000)}
	for i := range tr.Power {
		tr.Power[i] = powerW
	}
	return tr
}

// nodesWith builds three nodes over clones of the fixture nets with the
// given harvest power.
func nodesWith(f *fixture, powerW float64) []*sensor.Node {
	var nodes []*sensor.Node
	for _, loc := range synth.Locations() {
		cfg := sensor.DefaultConfig(int(loc), loc, f.nets[loc].Clone(), flatTrace(powerW))
		nodes = append(nodes, sensor.New(cfg))
	}
	return nodes
}

func smallTimeline(p *synth.Profile, slots int, seed int64) *synth.Timeline {
	cfg := synth.TimelineConfig{Slots: slots, MeanSegment: 60, MinSegment: 20, Seed: seed}
	return synth.GenerateTimeline(p, cfg)
}

func TestFullyPoweredNaiveAllMatchesBaseline(t *testing.T) {
	f := getFixture(t)
	tl := smallTimeline(f.profile, 400, 1)
	nodes := nodesWith(f, 10e-3) // 10 mW: effectively unconstrained
	h := host.New(host.Config{
		Sensors: 3, Classes: f.profile.NumClasses(),
		Recall: true, Agg: host.AggMajority,
	})
	res := Run(Config{
		Profile: f.profile, User: synth.NewUser(0), Timeline: tl,
		Nodes: nodes, Policy: schedule.NaiveAll{N: 3}, Host: h,
		Window: testWindow, Seed: 9, WarmupSlots: 5,
	})
	all, atLeast, _ := res.Completion.Rates()
	if all < 0.99 || atLeast < 0.99 {
		t.Fatalf("fully powered completion = %v/%v, want ≈1", all, atLeast)
	}
	// Accuracy should be near the fully-powered ensemble baseline.
	hb := host.New(host.Config{Sensors: 3, Classes: f.profile.NumClasses(), Recall: true, Agg: host.AggMajority})
	base := RunBaseline(BaselineConfig{
		Profile: f.profile, User: synth.NewUser(0), Timeline: tl,
		Window: testWindow, Seed: 9, Nets: f.nets, Host: hb,
	})
	if diff := res.Accuracy() - base.Accuracy(); diff < -0.08 || diff > 0.08 {
		t.Fatalf("fully-powered sim accuracy %v vs baseline %v differ too much",
			res.Accuracy(), base.Accuracy())
	}
}

func TestZeroPowerCompletesNothing(t *testing.T) {
	f := getFixture(t)
	tl := smallTimeline(f.profile, 100, 2)
	nodes := nodesWith(f, 0)
	for _, n := range nodes {
		n.Capacitor().Reset(0)
	}
	h := host.New(host.Config{Sensors: 3, Classes: f.profile.NumClasses(), Recall: true, Agg: host.AggMajority})
	res := Run(Config{
		Profile: f.profile, User: synth.NewUser(0), Timeline: tl,
		Nodes: nodes, Policy: schedule.NaiveAll{N: 3}, Host: h,
		Window: testWindow, Seed: 3,
	})
	_, atLeast, failed := res.Completion.Rates()
	if atLeast != 0 || failed != 1 {
		t.Fatalf("zero power completion: atLeast=%v failed=%v", atLeast, failed)
	}
	if res.Accuracy() != 0 {
		t.Fatalf("zero power accuracy = %v, want 0 (all missing)", res.Accuracy())
	}
}

func TestRoundRobinAmplePowerCompletes(t *testing.T) {
	f := getFixture(t)
	tl := smallTimeline(f.profile, 300, 3)
	nodes := nodesWith(f, 5e-3)
	h := host.New(host.Config{Sensors: 3, Classes: f.profile.NumClasses(), Recall: true, Agg: host.AggMajority})
	res := Run(Config{
		Profile: f.profile, User: synth.NewUser(0), Timeline: tl,
		Nodes: nodes, Policy: schedule.NewExtendedRoundRobin(12, 3), Host: h,
		Window: testWindow, Seed: 4, WarmupSlots: 12,
	})
	_, atLeast, _ := res.Completion.Rates()
	if atLeast < 0.99 {
		t.Fatalf("RR12 with ample power completion = %v, want ≈1", atLeast)
	}
	if res.Accuracy() < 0.5 {
		t.Fatalf("RR12 accuracy = %v, want >= 0.5", res.Accuracy())
	}
	// Each sensor should have been activated roughly equally.
	for i, st := range res.NodeStats {
		if st.Started == 0 {
			t.Fatalf("node %d never started", i)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	f := getFixture(t)
	run := func() float64 {
		tl := smallTimeline(f.profile, 200, 5)
		nodes := nodesWith(f, 200e-6)
		h := host.New(host.Config{Sensors: 3, Classes: f.profile.NumClasses(), Recall: true, Agg: host.AggMajority})
		res := Run(Config{
			Profile: f.profile, User: synth.NewUser(0), Timeline: tl,
			Nodes: nodes, Policy: schedule.NewExtendedRoundRobin(6, 3), Host: h,
			Window: testWindow, Seed: 6,
		})
		return res.Accuracy()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("simulation not deterministic: %v vs %v", a, b)
	}
}

func TestAASUsesRankTableAndFallback(t *testing.T) {
	f := getFixture(t)
	ranks := schedule.NewRankTable(f.accTable)
	tl := smallTimeline(f.profile, 400, 7)
	nodes := nodesWith(f, 5e-3)
	h := host.New(host.Config{Sensors: 3, Classes: f.profile.NumClasses(), Recall: true, Agg: host.AggMajority})
	res := Run(Config{
		Profile: f.profile, User: synth.NewUser(0), Timeline: tl,
		Nodes: nodes, Policy: schedule.NewAAS(12, 3, ranks), Host: h,
		Window: testWindow, Seed: 8, WarmupSlots: 12,
	})
	if res.Accuracy() < 0.5 {
		t.Fatalf("AAS accuracy = %v", res.Accuracy())
	}
	total := 0
	for _, st := range res.NodeStats {
		total += st.Started
	}
	// Cadence: one inference every 4 slots.
	want := len(tl.PerSlot) / 4
	if total < want-2 || total > want+2 {
		t.Fatalf("AAS started %d inferences, want ≈%d", total, want)
	}
}

func TestOriginWeightedBeatsNothing(t *testing.T) {
	// Smoke test for the full Origin stack: weighted aggregation + adaptive
	// matrix + AAS + recall on a constrained supply.
	f := getFixture(t)
	ranks := schedule.NewRankTable(f.accTable)
	tl := smallTimeline(f.profile, 600, 9)
	nodes := nodesWith(f, 250e-6)
	h := host.New(host.Config{
		Sensors: 3, Classes: f.profile.NumClasses(),
		Recall: true, Agg: host.AggWeighted,
		Matrix: f.matrix.Clone(), Adaptive: true,
	})
	res := Run(Config{
		Profile: f.profile, User: synth.NewUser(0), Timeline: tl,
		Nodes: nodes, Policy: schedule.NewAAS(12, 3, ranks), Host: h,
		Window: testWindow, Seed: 10, WarmupSlots: 20,
	})
	if res.Accuracy() < 0.4 {
		t.Fatalf("Origin stack accuracy = %v, want >= 0.4", res.Accuracy())
	}
	if h.AdaptsApplied() == 0 {
		t.Fatal("adaptive matrix never updated")
	}
}

func TestBaselineEnsembleBeatsWeakestSensor(t *testing.T) {
	f := getFixture(t)
	tl := smallTimeline(f.profile, 500, 11)
	h := host.New(host.Config{Sensors: 3, Classes: f.profile.NumClasses(), Recall: true, Agg: host.AggMajority})
	base := RunBaseline(BaselineConfig{
		Profile: f.profile, User: synth.NewUser(0), Timeline: tl,
		Window: testWindow, Seed: 12, Nets: f.nets, Host: h,
	})
	worst := 1.0
	for _, a := range f.perNet {
		if a < worst {
			worst = a
		}
	}
	if base.Accuracy() <= worst {
		t.Fatalf("majority ensemble (%v) should beat the weakest sensor (%v)", base.Accuracy(), worst)
	}
}

func TestWarmupExcluded(t *testing.T) {
	f := getFixture(t)
	tl := smallTimeline(f.profile, 50, 13)
	nodes := nodesWith(f, 10e-3)
	h := host.New(host.Config{Sensors: 3, Classes: f.profile.NumClasses(), Recall: true, Agg: host.AggMajority})
	res := Run(Config{
		Profile: f.profile, User: synth.NewUser(0), Timeline: tl,
		Nodes: nodes, Policy: schedule.NaiveAll{N: 3}, Host: h,
		Window: testWindow, Seed: 14, WarmupSlots: 20,
	})
	if got := res.Confusion.Total(); got != 30 {
		t.Fatalf("confusion total = %d, want 30 (50 slots − 20 warmup)", got)
	}
}

func TestConfigValidationPanics(t *testing.T) {
	f := getFixture(t)
	defer func() {
		if recover() == nil {
			t.Fatal("invalid config did not panic")
		}
	}()
	Run(Config{Profile: f.profile})
}

func TestLossyCommReducesFreshResultsButRecallCopes(t *testing.T) {
	f := getFixture(t)
	run := func(commCfg *CommConfig) *Result {
		tl := smallTimeline(f.profile, 400, 21)
		nodes := nodesWith(f, 5e-3)
		h := host.New(host.Config{Sensors: 3, Classes: f.profile.NumClasses(), Recall: true, Agg: host.AggMajority})
		return Run(Config{
			Profile: f.profile, User: synth.NewUser(0), Timeline: tl,
			Nodes: nodes, Policy: schedule.NewExtendedRoundRobin(6, 3), Host: h,
			Window: testWindow, Seed: 22, WarmupSlots: 12, Comm: commCfg,
		})
	}
	perfect := run(nil)
	lossy := run(&CommConfig{
		Uplink:   comm.Config{DropRate: 0.3, LatencyTicks: 2},
		Downlink: comm.Config{DropRate: 0.3, LatencyTicks: 2},
	})
	if lossy.FreshSlots >= perfect.FreshSlots {
		t.Fatalf("lossy links should reduce fresh rounds: %d vs %d", lossy.FreshSlots, perfect.FreshSlots)
	}
	// Recall keeps the surviving rounds useful: accuracy should not collapse.
	if lossy.RoundAccuracy() < perfect.RoundAccuracy()-0.25 {
		t.Fatalf("lossy round accuracy %v collapsed vs %v", lossy.RoundAccuracy(), perfect.RoundAccuracy())
	}
}

// anticipationSpy wraps a policy and records what the host anticipated at
// every decision point.
type anticipationSpy struct {
	inner schedule.Policy
	seen  []int
}

func (p *anticipationSpy) Name() string { return "spy(" + p.inner.Name() + ")" }

func (p *anticipationSpy) Decide(ctx *schedule.Context) []int {
	p.seen = append(p.seen, ctx.Anticipated)
	return p.inner.Decide(ctx)
}

// TestAnticipationFollowsEnsembleFinal is the regression test for the
// missing NoteFinal call: the anticipation the policy sees at slot s+1 must
// be the fused ensemble decision of slot s, not whichever lone sensor
// happened to report last.
func TestAnticipationFollowsEnsembleFinal(t *testing.T) {
	f := getFixture(t)
	tl := smallTimeline(f.profile, 300, 31)
	nodes := nodesWith(f, 10e-3)
	h := host.New(host.Config{Sensors: 3, Classes: f.profile.NumClasses(), Recall: true, Agg: host.AggMajority})
	spy := &anticipationSpy{inner: schedule.NaiveAll{N: 3}}
	res := Run(Config{
		Profile: f.profile, User: synth.NewUser(0), Timeline: tl,
		Nodes: nodes, Policy: spy, Host: h,
		Window: testWindow, Seed: 32,
	})
	if len(spy.seen) != res.Slots || len(res.Predicted) != res.Slots {
		t.Fatalf("recorded %d decisions / %d predictions over %d slots", len(spy.seen), len(res.Predicted), res.Slots)
	}
	for s := 1; s < res.Slots; s++ {
		if final := res.Predicted[s-1]; final >= 0 && spy.seen[s] != final {
			t.Fatalf("slot %d anticipation = %d, want ensemble final %d of slot %d",
				s, spy.seen[s], final, s-1)
		}
	}
}

// evenSlotPolicy activates every sensor on even slots only, so odd slots
// have no attempt round — a completion misattributed to the arrival slot
// of a late activation has nowhere to land.
type evenSlotPolicy struct{ n int }

func (p evenSlotPolicy) Name() string { return "even-slots" }

func (p evenSlotPolicy) Decide(ctx *schedule.Context) []int {
	if ctx.Slot%2 != 0 {
		return nil
	}
	ids := make([]int, p.n)
	for i := range ids {
		ids[i] = i
	}
	return ids
}

// TestLateActivationCreditedToDecisionSlot is the regression test for the
// downlink slot-attribution bug: with delivery latency longer than one slot
// (30 ticks > 25 ticks/slot), every activation arrives in the slot after
// the decision. Completions must still credit the round that decided them.
func TestLateActivationCreditedToDecisionSlot(t *testing.T) {
	f := getFixture(t)
	tl := smallTimeline(f.profile, 100, 33)
	nodes := nodesWith(f, 10e-3)
	h := host.New(host.Config{Sensors: 3, Classes: f.profile.NumClasses(), Recall: true, Agg: host.AggMajority})
	res := Run(Config{
		Profile: f.profile, User: synth.NewUser(0), Timeline: tl,
		Nodes: nodes, Policy: evenSlotPolicy{n: 3}, Host: h,
		Window: testWindow, Seed: 34,
		Comm: &CommConfig{Downlink: comm.Config{LatencyTicks: 30}},
	})
	_, atLeast, _ := res.Completion.Rates()
	if atLeast < 0.9 {
		t.Fatalf("late activations misattributed: completion ≥1 = %v, want ≈1", atLeast)
	}
	if res.Telemetry.Downlink.Late == 0 {
		t.Fatal("telemetry recorded no late downlink deliveries")
	}
}

// TestInFlightUplinkResultsCounted pins down the end-of-run accounting:
// results still riding the uplink when the timeline ends are counted, and
// every sent message is accounted for exactly once.
func TestInFlightUplinkResultsCounted(t *testing.T) {
	f := getFixture(t)
	tl := smallTimeline(f.profile, 100, 35)
	nodes := nodesWith(f, 10e-3)
	h := host.New(host.Config{Sensors: 3, Classes: f.profile.NumClasses(), Recall: true, Agg: host.AggMajority})
	res := Run(Config{
		Profile: f.profile, User: synth.NewUser(0), Timeline: tl,
		Nodes: nodes, Policy: schedule.NaiveAll{N: 3}, Host: h,
		Window: testWindow, Seed: 36,
		// Longer than the whole run (100 slots = 2500 ticks): nothing lands.
		Comm: &CommConfig{Uplink: comm.Config{LatencyTicks: 5000}},
	})
	tele := res.Telemetry
	if tele.InFlightResultsDiscarded == 0 {
		t.Fatal("no in-flight uplink results counted at end of run")
	}
	if res.FreshSlots != 0 {
		t.Fatalf("nothing should have been delivered, got %d fresh slots", res.FreshSlots)
	}
	if got := tele.Uplink.Delivered + tele.Uplink.Dropped + tele.InFlightResultsDiscarded; got != tele.Uplink.Sent {
		t.Fatalf("uplink accounting: delivered %d + dropped %d + in-flight %d != sent %d",
			tele.Uplink.Delivered, tele.Uplink.Dropped, tele.InFlightResultsDiscarded, tele.Uplink.Sent)
	}
}

// TestTelemetryMatchesNodeStats cross-checks the run telemetry against the
// per-node counters it mirrors.
func TestTelemetryMatchesNodeStats(t *testing.T) {
	f := getFixture(t)
	tl := smallTimeline(f.profile, 200, 37)
	nodes := nodesWith(f, 500e-6)
	h := host.New(host.Config{Sensors: 3, Classes: f.profile.NumClasses(), Recall: true, Agg: host.AggMajority})
	res := Run(Config{
		Profile: f.profile, User: synth.NewUser(0), Timeline: tl,
		Nodes: nodes, Policy: schedule.NewExtendedRoundRobin(6, 3), Host: h,
		Window: testWindow, Seed: 38,
	})
	tele := res.Telemetry
	if tele == nil {
		t.Fatal("Result.Telemetry not populated")
	}
	var started, completed int
	for _, st := range res.NodeStats {
		started += st.Started
		completed += st.Completed
	}
	if tele.InferencesStarted != started || tele.InferencesCompleted != completed {
		t.Fatalf("telemetry %d/%d vs node stats %d/%d", tele.InferencesStarted, tele.InferencesCompleted, started, completed)
	}
	if tele.Slots != res.Slots || len(tele.PerSlot) != res.Slots {
		t.Fatalf("telemetry covers %d slots (%d tallies), run had %d", tele.Slots, len(tele.PerSlot), res.Slots)
	}
	var perSlotStarted int
	for _, s := range tele.PerSlot {
		perSlotStarted += int(s.Started)
	}
	if perSlotStarted != started {
		t.Fatalf("per-slot started sum %d != total %d", perSlotStarted, started)
	}
	if tele.FreshVotes+tele.RecallVotes == 0 {
		t.Fatal("no votes recorded")
	}
}

func TestCommLatencyDelaysResults(t *testing.T) {
	f := getFixture(t)
	tl := smallTimeline(f.profile, 100, 23)
	nodes := nodesWith(f, 10e-3)
	h := host.New(host.Config{Sensors: 3, Classes: f.profile.NumClasses(), Recall: true, Agg: host.AggMajority})
	res := Run(Config{
		Profile: f.profile, User: synth.NewUser(0), Timeline: tl,
		Nodes: nodes, Policy: schedule.NaiveAll{N: 3}, Host: h,
		Window: testWindow, Seed: 24,
		Comm: &CommConfig{Uplink: comm.Config{LatencyTicks: 3}},
	})
	if res.FreshSlots == 0 {
		t.Fatal("latency-only links should still deliver results")
	}
	_, atLeast, _ := res.Completion.Rates()
	if atLeast < 0.9 {
		t.Fatalf("completion with latency-only links = %v", atLeast)
	}
}

package report

import (
	"fmt"
	"io"
	"strings"
)

// ASCII charts for terminal output: horizontal bar charts (the paper's
// grouped-bar figures) and sparklines (harvest traces, adaptation curves).

// Bar is one labelled value of a bar chart.
type Bar struct {
	// Label is rendered left of the bar.
	Label string
	// Value is the bar length; Max of the chart scales it.
	Value float64
}

// BarChart renders labelled horizontal bars scaled to width columns.
type BarChart struct {
	// Title is printed above the chart.
	Title string
	// Bars holds the rows in render order.
	Bars []Bar
	// Max is the full-scale value (0 = auto: the largest bar).
	Max float64
	// Width is the bar area width in runes (0 = 40).
	Width int
}

// Add appends one bar.
func (c *BarChart) Add(label string, value float64) {
	c.Bars = append(c.Bars, Bar{Label: label, Value: value})
}

// Write renders the chart.
func (c *BarChart) Write(w io.Writer) error {
	width := c.Width
	if width <= 0 {
		width = 40
	}
	max := c.Max
	if max <= 0 {
		for _, b := range c.Bars {
			if b.Value > max {
				max = b.Value
			}
		}
	}
	labelW := 0
	for _, b := range c.Bars {
		if len(b.Label) > labelW {
			labelW = len(b.Label)
		}
	}
	var out strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&out, "%s\n", c.Title)
	}
	for _, b := range c.Bars {
		n := 0
		if max > 0 {
			n = int(b.Value/max*float64(width) + 0.5)
		}
		if n > width {
			n = width
		}
		if n < 0 {
			n = 0
		}
		fmt.Fprintf(&out, "%-*s |%s%s| %6.2f%%\n",
			labelW, b.Label, strings.Repeat("█", n), strings.Repeat(" ", width-n), 100*b.Value)
	}
	_, err := io.WriteString(w, out.String())
	return err
}

// sparkRunes are the eight block heights of a sparkline.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders values as a one-line block-character graph, scaled
// between the series minimum and maximum (a flat series renders mid-height).
func Sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	lo, hi := values[0], values[0]
	for _, v := range values[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	var b strings.Builder
	for _, v := range values {
		idx := len(sparkRunes) / 2
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(sparkRunes)-1))
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sparkRunes) {
			idx = len(sparkRunes) - 1
		}
		b.WriteRune(sparkRunes[idx])
	}
	return b.String()
}

// Downsample reduces a series to at most n points by averaging equal-width
// buckets — how a long harvest trace fits a terminal-width sparkline.
func Downsample(values []float64, n int) []float64 {
	if n <= 0 || len(values) == 0 {
		return nil
	}
	if len(values) <= n {
		return append([]float64(nil), values...)
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		lo := i * len(values) / n
		hi := (i + 1) * len(values) / n
		if hi == lo {
			hi = lo + 1
		}
		s := 0.0
		for _, v := range values[lo:hi] {
			s += v
		}
		out[i] = s / float64(hi-lo)
	}
	return out
}

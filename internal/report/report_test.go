package report

import (
	"bytes"
	"strings"
	"testing"

	"origin/internal/experiments"
)

func sampleTable() *Table {
	t := NewTable("Sample", "Name", "Value")
	t.AddRow("alpha", "1.00%")
	t.AddRow("beta, with comma", "2.00%")
	return t
}

func TestWriteText(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleTable().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Sample", "Name", "alpha", "beta, with comma"} {
		if !strings.Contains(out, want) {
			t.Fatalf("text output missing %q:\n%s", want, out)
		}
	}
	// Columns aligned: both value cells start at the same offset.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if idx1, idx2 := strings.Index(lines[2], "1.00%"), strings.Index(lines[3], "2.00%"); idx1 != idx2 {
		t.Fatalf("columns misaligned: %d vs %d\n%s", idx1, idx2, out)
	}
}

func TestWriteMarkdown(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleTable().WriteMarkdown(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "### Sample") {
		t.Fatalf("markdown missing heading:\n%s", out)
	}
	if !strings.Contains(out, "| Name | Value |") {
		t.Fatalf("markdown missing header row:\n%s", out)
	}
	if !strings.Contains(out, "| --- | --- |") {
		t.Fatalf("markdown missing separator:\n%s", out)
	}
}

func TestWriteCSVQuoting(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleTable().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `"beta, with comma"`) {
		t.Fatalf("csv did not quote comma cell:\n%s", out)
	}
	if !strings.Contains(out, "# Sample") {
		t.Fatalf("csv missing title comment:\n%s", out)
	}
}

func TestAddRowValidatesWidth(t *testing.T) {
	tb := NewTable("x", "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("short row did not panic")
		}
	}()
	tb.AddRow("only one")
}

func TestFormatters(t *testing.T) {
	if Percent(0.8388) != "83.88%" {
		t.Fatalf("Percent = %q", Percent(0.8388))
	}
	if Delta(0.0272) != "+2.72" {
		t.Fatalf("Delta = %q", Delta(0.0272))
	}
	if Delta(-0.0285) != "-2.85" {
		t.Fatalf("Delta = %q", Delta(-0.0285))
	}
}

func TestWriteDispatch(t *testing.T) {
	var buf bytes.Buffer
	for _, f := range []Format{Text, Markdown, CSV} {
		buf.Reset()
		if err := sampleTable().Write(&buf, f); err != nil {
			t.Fatalf("format %d: %v", f, err)
		}
		if buf.Len() == 0 {
			t.Fatalf("format %d produced nothing", f)
		}
	}
	if err := sampleTable().Write(&buf, Format(9)); err == nil {
		t.Fatal("unknown format accepted")
	}
}

func TestAdaptersProduceTables(t *testing.T) {
	fig1 := &experiments.Fig1Result{
		NaiveAll: 0.02, NaiveAtLeastOne: 0.08, NaiveFailed: 0.92,
		RR3Succeeded: 0.24, RR3Failed: 0.76, Slots: 100,
	}
	if tb := Fig1Table(fig1); len(tb.Rows) != 5 {
		t.Fatalf("fig1 rows = %d", len(tb.Rows))
	}
	t1 := &experiments.Table1Result{
		Activities: []string{"Walking"},
		Origin:     []float64{0.81}, BL2: []float64{0.84}, BL1: []float64{0.91},
		OriginOverall: 0.83, BL2Overall: 0.81, BL1Overall: 0.87,
	}
	tb := Table1Table(t1)
	if len(tb.Rows) != 2 {
		t.Fatalf("table1 rows = %d", len(tb.Rows))
	}
	if tb.Rows[0][4] != "-3.00" {
		t.Fatalf("delta cell = %q", tb.Rows[0][4])
	}
	abl := &experiments.AblationSet{Title: "T", Rows: []experiments.AblationResult{{Name: "a", Accuracy: 0.5, Completion: 0.9}}}
	if tb := AblationTable(abl); len(tb.Rows) != 1 {
		t.Fatalf("ablation rows = %d", len(tb.Rows))
	}
}

func TestItoa(t *testing.T) {
	for v, want := range map[int]string{0: "0", 12: "12", -3: "-3", 360: "360"} {
		if got := itoa(v); got != want {
			t.Fatalf("itoa(%d) = %q, want %q", v, got, want)
		}
	}
}

func TestFigureAdapters(t *testing.T) {
	fig2 := &experiments.Fig2Result{
		Activities: []string{"Walking", "Cycling"},
		PerSensor:  [][]float64{{0.5, 0.8}, {0.6, 0.9}, {0.4, 0.95}},
		Majority:   []float64{0.7, 0.97},
		Windows:    100,
	}
	tb := Fig2Table(fig2)
	if len(tb.Rows) != 2 || tb.Rows[1][4] != "97.00%" {
		t.Fatalf("fig2 table = %+v", tb.Rows)
	}

	fig5 := &experiments.Fig5Result{
		Dataset:    "MHEALTH",
		Activities: []string{"Walking"},
		Cells: []experiments.PolicyCell{
			{Width: 12, Kind: experiments.PolicyOrigin, PerClass: []float64{0.8}, Overall: 0.8},
		},
		B1PerClass: []float64{0.85}, B2PerClass: []float64{0.78},
		B1Overall: 0.85, B2Overall: 0.78,
	}
	tb5 := Fig5Table(fig5)
	if len(tb5.Rows) != 3 { // 1 cell + 2 baselines
		t.Fatalf("fig5 rows = %d", len(tb5.Rows))
	}
	if tb5.Rows[0][0] != "RR12 Origin" {
		t.Fatalf("fig5 cell name = %q", tb5.Rows[0][0])
	}

	fig6 := &experiments.Fig6Result{
		Users:  []string{"User 1"},
		Curves: [][]float64{{0.7, 0.72, 0.75, 0.78}},
		Base:   0.8,
	}
	tb6 := Fig6Table(fig6)
	if len(tb6.Rows) != 2 || len(tb6.Header) != 1+len(experiments.Fig6Checkpoints) {
		t.Fatalf("fig6 table shape = %dx%d", len(tb6.Rows), len(tb6.Header))
	}
	if tb6.Rows[1][0] != "Base model" {
		t.Fatalf("fig6 base row = %q", tb6.Rows[1][0])
	}
}

func TestBarChartRendering(t *testing.T) {
	c := &BarChart{Title: "Accuracy", Width: 10}
	c.Add("Origin", 0.8)
	c.Add("BL-2", 0.4)
	var buf bytes.Buffer
	if err := c.Write(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Accuracy") || !strings.Contains(out, "Origin") {
		t.Fatalf("chart missing labels:\n%s", out)
	}
	// The 0.8 bar is full scale (auto max), the 0.4 bar half.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	full := strings.Count(lines[1], "█")
	half := strings.Count(lines[2], "█")
	if full != 10 || half != 5 {
		t.Fatalf("bar widths = %d/%d, want 10/5\n%s", full, half, out)
	}
}

func TestBarChartClampsAndEmpty(t *testing.T) {
	c := &BarChart{Max: 1, Width: 4}
	c.Add("over", 2)   // clamps to full width
	c.Add("neg", -0.5) // clamps to zero
	var buf bytes.Buffer
	if err := c.Write(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if strings.Count(lines[0], "█") != 4 {
		t.Fatalf("over-scale bar not clamped:\n%s", buf.String())
	}
	if strings.Count(lines[1], "█") != 0 {
		t.Fatalf("negative bar not clamped:\n%s", buf.String())
	}
}

func TestSparkline(t *testing.T) {
	s := Sparkline([]float64{0, 0.5, 1})
	if len([]rune(s)) != 3 {
		t.Fatalf("sparkline length = %d", len([]rune(s)))
	}
	runes := []rune(s)
	if runes[0] != '▁' || runes[2] != '█' {
		t.Fatalf("sparkline extremes = %q", s)
	}
	if Sparkline(nil) != "" {
		t.Fatal("empty sparkline should be empty")
	}
	// Flat series renders mid-height, not a panic.
	flat := Sparkline([]float64{3, 3, 3})
	if len([]rune(flat)) != 3 {
		t.Fatalf("flat sparkline = %q", flat)
	}
}

func TestDownsample(t *testing.T) {
	vals := make([]float64, 100)
	for i := range vals {
		vals[i] = float64(i)
	}
	ds := Downsample(vals, 10)
	if len(ds) != 10 {
		t.Fatalf("downsampled length = %d", len(ds))
	}
	// Bucket means ascend.
	for i := 1; i < len(ds); i++ {
		if ds[i] <= ds[i-1] {
			t.Fatalf("bucket means not ascending: %v", ds)
		}
	}
	// Short series pass through.
	if got := Downsample([]float64{1, 2}, 10); len(got) != 2 {
		t.Fatalf("short series = %v", got)
	}
	if Downsample(nil, 5) != nil {
		t.Fatal("nil series should stay nil")
	}
}

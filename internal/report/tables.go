package report

import (
	"origin/internal/experiments"
	"origin/internal/synth"
)

// Adapters from the typed experiment results to Tables.

// Fig1Table renders the Fig. 1 completion breakdowns.
func Fig1Table(r *experiments.Fig1Result) *Table {
	t := NewTable("Fig. 1 — inference completion under naive scheduling",
		"Scenario", "Outcome", "Measured", "Paper")
	t.AddRow("Naive concurrent", "all succeed", Percent(r.NaiveAll), "≈1%")
	t.AddRow("Naive concurrent", "≥1 succeeds", Percent(r.NaiveAtLeastOne), "≈10%")
	t.AddRow("Naive concurrent", "failed", Percent(r.NaiveFailed), "≈90%")
	t.AddRow("Round-robin RR3", "succeeded", Percent(r.RR3Succeeded), "≈28%")
	t.AddRow("Round-robin RR3", "failed", Percent(r.RR3Failed), "≈72%")
	return t
}

// Fig2Table renders the per-sensor / majority accuracy matrix.
func Fig2Table(r *experiments.Fig2Result) *Table {
	t := NewTable("Fig. 2 — per-sensor DNN accuracy and majority-voting ensemble",
		"Activity", "Chest", "Left Ankle", "Right Wrist", "Majority")
	for c, act := range r.Activities {
		t.AddRow(act,
			Percent(r.PerSensor[synth.Chest][c]),
			Percent(r.PerSensor[synth.LeftAnkle][c]),
			Percent(r.PerSensor[synth.RightWrist][c]),
			Percent(r.Majority[c]))
	}
	return t
}

// Fig5Table renders one Fig. 5 panel.
func Fig5Table(r *experiments.Fig5Result) *Table {
	header := append([]string{"Policy"}, r.Activities...)
	header = append(header, "Overall")
	t := NewTable("Fig. 5 ("+r.Dataset+") — policy sweep vs fully-powered baselines", header...)
	for _, c := range r.Cells {
		row := []string{cellName(c)}
		for _, v := range c.PerClass {
			row = append(row, Percent(v))
		}
		row = append(row, Percent(c.Overall))
		t.AddRow(row...)
	}
	b2 := []string{"Baseline-2"}
	for _, v := range r.B2PerClass {
		b2 = append(b2, Percent(v))
	}
	t.AddRow(append(b2, Percent(r.B2Overall))...)
	b1 := []string{"Baseline-1"}
	for _, v := range r.B1PerClass {
		b1 = append(b1, Percent(v))
	}
	t.AddRow(append(b1, Percent(r.B1Overall))...)
	return t
}

func cellName(c experiments.PolicyCell) string {
	return "RR" + itoa(c.Width) + " " + c.Kind.String()
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// Table1Table renders the paper's Table I with deltas.
func Table1Table(r *experiments.Table1Result) *Table {
	t := NewTable("Table I — RR12-Origin vs both baselines",
		"Activity", "RR12 Origin", "BL-2", "BL-1", "vs BL-2", "vs BL-1")
	for c, act := range r.Activities {
		t.AddRow(act,
			Percent(r.Origin[c]), Percent(r.BL2[c]), Percent(r.BL1[c]),
			Delta(r.Origin[c]-r.BL2[c]), Delta(r.Origin[c]-r.BL1[c]))
	}
	t.AddRow("Overall",
		Percent(r.OriginOverall), Percent(r.BL2Overall), Percent(r.BL1Overall),
		Delta(r.OriginOverall-r.BL2Overall), Delta(r.OriginOverall-r.BL1Overall))
	return t
}

// Fig6Table renders the adaptation checkpoints.
func Fig6Table(r *experiments.Fig6Result) *Table {
	header := []string{"User"}
	for _, m := range experiments.Fig6Checkpoints {
		header = append(header, "Iter "+itoa(m))
	}
	t := NewTable("Fig. 6 — adaptive confidence matrix on unseen noisy users", header...)
	for u, name := range r.Users {
		row := []string{name}
		for _, v := range r.Curves[u] {
			row = append(row, Percent(v))
		}
		t.AddRow(row...)
	}
	base := []string{"Base model"}
	for range experiments.Fig6Checkpoints {
		base = append(base, Percent(r.Base))
	}
	t.AddRow(base...)
	return t
}

// AblationTable renders an ablation set.
func AblationTable(a *experiments.AblationSet) *Table {
	t := NewTable(a.Title, "Variant", "Accuracy", "Completion")
	for _, row := range a.Rows {
		t.AddRow(row.Name, Percent(row.Accuracy), Percent(row.Completion))
	}
	return t
}

// DegradationTable renders a fault-intensity sweep: availability and
// accuracy against fault intensity, with abstentions and injected-fault
// counts alongside so silent degradation has nowhere to hide.
func DegradationTable(d *experiments.DegradationSet) *Table {
	t := NewTable(d.Title,
		"Fault intensity", "Availability", "Round acc", "Slot acc", "Abstained", "Faults")
	for _, row := range d.Rows {
		t.AddRow(row.Label,
			Percent(row.Availability), Percent(row.RoundAccuracy), Percent(row.SlotAccuracy),
			itoa(row.Abstentions), itoa(row.FaultsInjected))
	}
	return t
}

// Package report renders experiment results as aligned text, GitHub
// Markdown or CSV, so the evaluation artefacts (EXPERIMENTS.md, spreadsheet
// imports) are generated rather than hand-copied.
//
// The central abstraction is Table: a header plus rows of cells. The
// experiment drivers expose typed results; this package turns them into
// tables with explicit formatting rules (percentages to two decimals,
// deltas signed) and serialises tables to any of the three formats.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a rectangular result: a title, a header row and data rows.
type Table struct {
	// Title is rendered above the table (Markdown: as a heading).
	Title string
	// Header names the columns.
	Header []string
	// Rows holds the data; every row must have len(Header) cells.
	Rows [][]string
}

// NewTable builds an empty table with the given title and columns.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: append([]string(nil), header...)}
}

// AddRow appends a row, validating its width.
func (t *Table) AddRow(cells ...string) {
	if len(cells) != len(t.Header) {
		panic(fmt.Sprintf("report: row has %d cells, header has %d", len(cells), len(t.Header)))
	}
	t.Rows = append(t.Rows, append([]string(nil), cells...))
}

// Percent formats a fraction as "12.34%".
func Percent(x float64) string { return fmt.Sprintf("%.2f%%", 100*x) }

// Delta formats a difference in percentage points as "+1.23" / "−1.23".
func Delta(x float64) string { return fmt.Sprintf("%+.2f", 100*x) }

// WriteText renders the table with aligned columns.
func (t *Table) WriteText(w io.Writer) error {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteMarkdown renders the table as GitHub-flavoured Markdown.
func (t *Table) WriteMarkdown(w io.Writer) error {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "### %s\n\n", t.Title)
	}
	b.WriteString("| " + strings.Join(t.Header, " | ") + " |\n")
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = "---"
	}
	b.WriteString("| " + strings.Join(sep, " | ") + " |\n")
	for _, row := range t.Rows {
		escaped := make([]string, len(row))
		for i, c := range row {
			escaped[i] = strings.ReplaceAll(c, "|", "\\|")
		}
		b.WriteString("| " + strings.Join(escaped, " | ") + " |\n")
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCSV renders the table as RFC-4180-style CSV (header first; the title
// is emitted as a comment line).
func (t *Table) WriteCSV(w io.Writer) error {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "# %s\n", t.Title)
	}
	writeRow := func(cells []string) {
		quoted := make([]string, len(cells))
		for i, c := range cells {
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			quoted[i] = c
		}
		b.WriteString(strings.Join(quoted, ",") + "\n")
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Format selects a rendering.
type Format int

// Supported renderings.
const (
	Text Format = iota
	Markdown
	CSV
)

// Write renders the table in the requested format.
func (t *Table) Write(w io.Writer, f Format) error {
	switch f {
	case Text:
		return t.WriteText(w)
	case Markdown:
		return t.WriteMarkdown(w)
	case CSV:
		return t.WriteCSV(w)
	default:
		return fmt.Errorf("report: unknown format %d", f)
	}
}

package fleet

import (
	"encoding/binary"
	"fmt"
	"math"

	"origin/internal/ensemble"
	"origin/internal/host"
)

// Versioned session codec. A SessionState snapshot is everything a replica
// needs to continue a session another replica started: identity, per-session
// options, the round counter, the host device's recall store and
// anticipation, the adapted confidence matrix, the serving telemetry
// counters, and an opaque attachment the stream front uses for its
// window-assembly lineage (internal/serve owns that encoding; fleet carries
// it without interpreting a byte).
//
// Wire layout: a 4-byte magic, a uvarint codec version, then version-1
// sections. Strings are uvarint length + bytes; signed integers are zigzag
// varints; floats travel as raw IEEE-754 bits inside the embedded binary
// matrix section (ensemble.AppendBinary). The decoder is fuzzed: damaged
// input must be rejected, never panic and never over-allocate.

// sessionMagic prefixes every session snapshot.
var sessionMagic = [4]byte{'O', 'S', 'S', '1'}

// SessionCodecVersion is the current snapshot codec version. Decoders accept
// exactly the versions they know; an unknown version fails loudly so a mixed
// fleet cannot half-parse a newer replica's snapshot.
const SessionCodecVersion = 1

// Decode caps — a corrupted length cannot drive a huge allocation.
const (
	maxSessionID      = 255
	maxSessionProfile = 255
	maxRecallEntries  = 4096
	maxAttachment     = 1 << 22
)

// SessionCounters are the serving telemetry counters that migrate with a
// session (the subset of obs.Telemetry a serving session mutates).
type SessionCounters struct {
	Slots             int `json:"slots"`
	FreshVotes        int `json:"freshVotes"`
	RecallVotes       int `json:"recallVotes"`
	AdaptationUpdates int `json:"adaptationUpdates"`
	QuorumAbstentions int `json:"quorumAbstentions"`
}

// SessionState is the portable snapshot of one serving session.
type SessionState struct {
	ID      string
	User    int64
	Profile string
	Opts    Opts
	// Slot is the number of rounds classified — also the snapshot's store
	// version (see StateStore).
	Slot     int
	Device   host.DeviceState
	Matrix   *ensemble.Matrix
	Counters SessionCounters
	// Attachment is the stream front's opaque lineage section (nil for
	// sessions served over HTTP only).
	Attachment []byte
}

const (
	sessOptsFreeze  = 0x01
	sessRecallValid = 0x01
)

// EncodeSessionState renders a snapshot in the current codec version.
func EncodeSessionState(st SessionState) ([]byte, error) {
	if st.ID == "" || len(st.ID) > maxSessionID {
		return nil, fmt.Errorf("fleet: session id %q not encodable", st.ID)
	}
	if st.Profile == "" || len(st.Profile) > maxSessionProfile {
		return nil, fmt.Errorf("fleet: profile %q not encodable", st.Profile)
	}
	if st.Slot < 0 || st.Opts.StaleLimit < 0 || st.Opts.Quorum < 0 {
		return nil, fmt.Errorf("fleet: negative snapshot fields")
	}
	if len(st.Device.Recall) == 0 || len(st.Device.Recall) > maxRecallEntries {
		return nil, fmt.Errorf("fleet: snapshot has %d recall entries", len(st.Device.Recall))
	}
	if st.Matrix == nil {
		return nil, fmt.Errorf("fleet: snapshot without a matrix")
	}
	if len(st.Attachment) > maxAttachment {
		return nil, fmt.Errorf("fleet: attachment %d bytes exceeds %d", len(st.Attachment), maxAttachment)
	}
	b := append([]byte(nil), sessionMagic[:]...)
	b = binary.AppendUvarint(b, SessionCodecVersion)
	b = appendString(b, st.ID)
	b = appendZigzag64(b, st.User)
	b = appendString(b, st.Profile)
	b = binary.AppendUvarint(b, uint64(st.Opts.StaleLimit))
	b = binary.AppendUvarint(b, uint64(st.Opts.Quorum))
	var oflags byte
	if st.Opts.Freeze {
		oflags |= sessOptsFreeze
	}
	b = append(b, oflags)
	b = binary.AppendUvarint(b, uint64(st.Slot))

	// Device section.
	b = binary.AppendUvarint(b, uint64(len(st.Device.Recall)))
	for _, e := range st.Device.Recall {
		b = appendRecall(b, e)
	}
	b = appendZigzag64(b, int64(st.Device.Anticipated))
	b = appendRecall(b, st.Device.LastFresh)
	b = binary.AppendUvarint(b, uint64(st.Device.Received))
	b = binary.AppendUvarint(b, uint64(st.Device.AdaptsApplied))

	// Counters section.
	for _, v := range []int{st.Counters.Slots, st.Counters.FreshVotes, st.Counters.RecallVotes,
		st.Counters.AdaptationUpdates, st.Counters.QuorumAbstentions} {
		if v < 0 {
			return nil, fmt.Errorf("fleet: negative telemetry counter")
		}
		b = binary.AppendUvarint(b, uint64(v))
	}

	// Matrix section (self-delimiting).
	b = st.Matrix.AppendBinary(b)

	// Attachment section.
	b = binary.AppendUvarint(b, uint64(len(st.Attachment)))
	b = append(b, st.Attachment...)
	return b, nil
}

// DecodeSessionState parses a snapshot, validating every field. The device
// section is range-checked again by host.Device.Restore at install time
// against the live model geometry; here only structural sanity is enforced.
func DecodeSessionState(b []byte) (SessionState, error) {
	var st SessionState
	if len(b) < len(sessionMagic) || string(b[:4]) != string(sessionMagic[:]) {
		return st, fmt.Errorf("fleet: bad session snapshot magic")
	}
	d := &stateReader{b: b, off: 4}
	if v := d.uvarint(); v != SessionCodecVersion {
		if d.err == nil {
			return st, fmt.Errorf("fleet: unsupported session codec version %d (have %d)", v, SessionCodecVersion)
		}
		return st, fmt.Errorf("fleet: malformed session snapshot header")
	}
	st.ID = d.str(maxSessionID)
	st.User = d.zigzag()
	st.Profile = d.str(maxSessionProfile)
	st.Opts.StaleLimit = d.count(math.MaxInt32)
	st.Opts.Quorum = d.count(math.MaxInt32)
	oflags := d.byte()
	st.Opts.Freeze = oflags&sessOptsFreeze != 0
	st.Slot = d.count(math.MaxInt32)
	if d.err != nil || st.ID == "" || st.Profile == "" || oflags&^byte(sessOptsFreeze) != 0 {
		return SessionState{}, fmt.Errorf("fleet: malformed session snapshot header")
	}

	n := d.count(maxRecallEntries)
	if d.err != nil || n == 0 {
		return SessionState{}, fmt.Errorf("fleet: malformed recall section")
	}
	st.Device.Recall = make([]host.RecallState, n)
	for i := range st.Device.Recall {
		st.Device.Recall[i] = d.recall()
	}
	st.Device.Anticipated = int(d.zigzag())
	st.Device.LastFresh = d.recall()
	st.Device.Received = d.count(math.MaxInt32)
	st.Device.AdaptsApplied = d.count(math.MaxInt32)

	st.Counters.Slots = d.count(math.MaxInt32)
	st.Counters.FreshVotes = d.count(math.MaxInt32)
	st.Counters.RecallVotes = d.count(math.MaxInt32)
	st.Counters.AdaptationUpdates = d.count(math.MaxInt32)
	st.Counters.QuorumAbstentions = d.count(math.MaxInt32)
	if d.err != nil {
		return SessionState{}, fmt.Errorf("fleet: malformed session snapshot: %v", d.err)
	}

	m, consumed, err := ensemble.DecodeBinary(d.b[d.off:])
	if err != nil {
		return SessionState{}, fmt.Errorf("fleet: session snapshot matrix: %w", err)
	}
	d.off += consumed
	st.Matrix = m

	an := d.count(maxAttachment)
	if d.err != nil {
		return SessionState{}, fmt.Errorf("fleet: malformed attachment section")
	}
	if an > 0 {
		st.Attachment = d.bytes(an)
	}
	if d.err != nil || d.off != len(d.b) {
		return SessionState{}, fmt.Errorf("fleet: session snapshot has trailing or missing bytes")
	}
	return st, nil
}

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendZigzag64(b []byte, v int64) []byte {
	return binary.AppendUvarint(b, uint64((v<<1)^(v>>63)))
}

func appendRecall(b []byte, e host.RecallState) []byte {
	var flags byte
	if e.Valid {
		flags |= sessRecallValid
	}
	b = append(b, flags)
	b = appendZigzag64(b, int64(e.Class))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(e.Confidence))
	return binary.AppendUvarint(b, uint64(e.Slot))
}

// stateReader is a sticky-error cursor over a snapshot (the same pattern as
// comm's payloadReader, kept package-local to avoid exporting it).
type stateReader struct {
	b   []byte
	off int
	err error
}

func (d *stateReader) fail(msg string) {
	if d.err == nil {
		d.err = fmt.Errorf("%s", msg)
	}
}

func (d *stateReader) byte() byte {
	if d.err != nil || d.off >= len(d.b) {
		d.fail("truncated")
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *stateReader) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail("truncated varint")
		return 0
	}
	d.off += n
	return v
}

// count reads a uvarint bounded by max, as an int.
func (d *stateReader) count(max int) int {
	v := d.uvarint()
	if d.err == nil && v > uint64(max) {
		d.fail("count out of range")
		return 0
	}
	return int(v)
}

func (d *stateReader) zigzag() int64 {
	u := d.uvarint()
	return int64(u>>1) ^ -int64(u&1)
}

func (d *stateReader) bytes(n int) []byte {
	if d.err != nil || n < 0 || d.off+n > len(d.b) {
		d.fail("truncated bytes")
		return nil
	}
	v := append([]byte(nil), d.b[d.off:d.off+n]...)
	d.off += n
	return v
}

func (d *stateReader) str(max int) string {
	n := d.count(max)
	return string(d.bytes(n))
}

func (d *stateReader) f64() float64 {
	if d.err != nil || d.off+8 > len(d.b) {
		d.fail("truncated float")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.b[d.off:]))
	d.off += 8
	return v
}

func (d *stateReader) recall() host.RecallState {
	flags := d.byte()
	if d.err == nil && flags&^byte(sessRecallValid) != 0 {
		d.fail("unknown recall flags")
	}
	class := int(d.zigzag())
	conf := d.f64()
	slot := d.count(math.MaxInt32)
	if d.err == nil && (math.IsNaN(conf) || math.IsInf(conf, 0) || conf < 0) {
		d.fail("invalid recall confidence")
	}
	if d.err == nil && (class < -1 || class > math.MaxInt32) {
		d.fail("recall class out of range")
	}
	return host.RecallState{Class: class, Confidence: conf, Slot: slot, Valid: flags&sessRecallValid != 0}
}

// Package fleettest builds small deterministic serving models for tests:
// the full Model/Registry/Manager machinery over untrained (but
// deterministically initialised) nets and a synthetic accuracy table, so
// serving tests never pay for the minutes-long experiments.BuildSystem.
package fleettest

import (
	"fmt"
	"math/rand"

	"origin/internal/dnn"
	"origin/internal/ensemble"
	"origin/internal/experiments"
	"origin/internal/fleet"
	"origin/internal/schedule"
	"origin/internal/synth"
)

// NewModel returns a tiny deterministic model for the named profile
// ("MHEALTH" or "PAMAP2"). Two calls with the same name produce
// behaviourally identical models (same net weights, same tables), which is
// what lets replay tests rebuild "the same" model on both sides.
func NewModel(profileName string) (*fleet.Model, error) {
	var p *synth.Profile
	switch profileName {
	case "MHEALTH":
		p = synth.MHEALTHProfile()
	case "PAMAP2":
		p = synth.PAMAP2Profile()
	default:
		return nil, fmt.Errorf("fleettest: unknown profile %q", profileName)
	}
	classes := p.NumClasses()
	nets := make([]*dnn.Network, synth.NumLocations)
	acc := make([][]float64, synth.NumLocations)
	m := ensemble.NewMatrix(synth.NumLocations, classes)
	for loc := 0; loc < synth.NumLocations; loc++ {
		rng := rand.New(rand.NewSource(42 + int64(loc)))
		nets[loc] = dnn.NewShallowHARNetwork(rng, dnn.DefaultHARConfig(synth.Channels, experiments.Window, classes))
		acc[loc] = make([]float64, classes)
		for c := 0; c < classes; c++ {
			// Unequal, deterministic expertise so rank tables and weighted
			// voting have structure to exploit.
			acc[loc][c] = 0.4 + 0.1*float64((loc+c)%3)
			m.Set(loc, c, 0.01+0.005*float64((loc+2*c)%4))
		}
	}
	sys := &experiments.System{
		Profile:  p,
		NetsB1:   nets,
		NetsB2:   nets,
		Matrix:   m,
		AccTable: acc,
		Ranks:    schedule.NewRankTable(acc),
	}
	return fleet.NewModel(profileName, sys), nil
}

// NewRegistry returns a registry whose builder serves tiny deterministic
// models instead of trained ones.
func NewRegistry() *fleet.Registry {
	return fleet.NewRegistry(func(profile string) (*fleet.Model, error) {
		return NewModel(profile)
	})
}

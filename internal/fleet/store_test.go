package fleet

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func testStores(t *testing.T) map[string]StateStore {
	t.Helper()
	fs, err := NewFileStateStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return map[string]StateStore{"mem": NewMemStateStore(), "file": fs}
}

func TestStateStoreVersioning(t *testing.T) {
	for name, s := range testStores(t) {
		t.Run(name, func(t *testing.T) {
			if _, _, ok, err := s.Load("absent"); ok || err != nil {
				t.Fatalf("Load(absent) = ok=%v err=%v", ok, err)
			}
			if err := s.Put("a", 3, []byte("v3")); err != nil {
				t.Fatal(err)
			}
			// A newer write replaces.
			if err := s.Put("a", 5, []byte("v5")); err != nil {
				t.Fatal(err)
			}
			// A stale write from a dead previous owner is silently dropped.
			if err := s.Put("a", 4, []byte("v4-stale")); err != nil {
				t.Fatal(err)
			}
			// An equal-version rewrite (deterministic replay of the same round)
			// is accepted.
			if err := s.Put("a", 5, []byte("v5-replay")); err != nil {
				t.Fatal(err)
			}
			blob, ver, ok, err := s.Load("a")
			if err != nil || !ok {
				t.Fatalf("Load: ok=%v err=%v", ok, err)
			}
			if ver != 5 || !bytes.Equal(blob, []byte("v5-replay")) {
				t.Fatalf("Load = ver %d blob %q, want 5 / v5-replay", ver, blob)
			}
			if err := s.Put("a", -1, nil); err == nil {
				t.Fatal("Put accepted a negative version")
			}
			if err := s.Delete("a"); err != nil {
				t.Fatal(err)
			}
			if _, _, ok, _ := s.Load("a"); ok {
				t.Fatal("Load found a deleted session")
			}
			if err := s.Delete("a"); err != nil {
				t.Fatal("Delete of an absent session must be a no-op")
			}
		})
	}
}

func TestStateStoreIsolatesCallerBuffers(t *testing.T) {
	for name, s := range testStores(t) {
		t.Run(name, func(t *testing.T) {
			buf := []byte("original")
			if err := s.Put("a", 1, buf); err != nil {
				t.Fatal(err)
			}
			buf[0] = 'X'
			got, _, _, err := s.Load("a")
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, []byte("original")) {
				t.Fatalf("stored blob aliased the caller's buffer: %q", got)
			}
			got[0] = 'Y'
			again, _, _, _ := s.Load("a")
			if !bytes.Equal(again, []byte("original")) {
				t.Fatal("Load returned a shared buffer")
			}
		})
	}
}

func TestFileStateStoreEscapesHostileIDs(t *testing.T) {
	dir := t.TempDir()
	s, err := NewFileStateStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	hostile := []string{"../../etc/passwd", "a/b", "", ".hidden", "a b"}
	for i, id := range hostile {
		if err := s.Put(id, 1, []byte(fmt.Sprintf("blob-%d", i))); err != nil {
			t.Fatalf("Put(%q): %v", id, err)
		}
		blob, _, ok, err := s.Load(id)
		if err != nil || !ok || !bytes.Equal(blob, []byte(fmt.Sprintf("blob-%d", i))) {
			t.Fatalf("Load(%q) = %q ok=%v err=%v", id, blob, ok, err)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), "..") || strings.ContainsAny(e.Name(), "/ ") {
			t.Fatalf("hostile id leaked into filename %q", e.Name())
		}
		if !strings.HasSuffix(e.Name(), ".session") {
			t.Fatalf("unexpected leftover file %q (temp file not cleaned?)", e.Name())
		}
	}
	// The parent dir must not have been escaped into.
	if _, err := os.Stat(filepath.Join(dir, "..", "etc")); err == nil {
		t.Fatal("hostile id escaped the store directory")
	}
}

func TestStateStoreConcurrentWriters(t *testing.T) {
	for name, s := range testStores(t) {
		t.Run(name, func(t *testing.T) {
			var wg sync.WaitGroup
			for w := 0; w < 8; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for v := 1; v <= 20; v++ {
						_ = s.Put("shared", int64(v), []byte(fmt.Sprintf("w%d-v%d", w, v)))
					}
				}(w)
			}
			wg.Wait()
			blob, ver, ok, err := s.Load("shared")
			if err != nil || !ok {
				t.Fatalf("Load: ok=%v err=%v", ok, err)
			}
			if ver != 20 {
				t.Fatalf("final version %d, want 20", ver)
			}
			if !strings.HasSuffix(string(blob), "-v20") {
				t.Fatalf("final blob %q is not a version-20 write", blob)
			}
		})
	}
}

package fleet

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"origin/internal/dnn"
	"origin/internal/ensemble"
	"origin/internal/experiments"
	"origin/internal/schedule"
	"origin/internal/synth"
)

// tinyModel builds a deterministic serving model without training. It is
// duplicated (in miniature) from fleettest, which white-box tests cannot
// import without an import cycle.
func tinyModel() *Model {
	p := synth.MHEALTHProfile()
	classes := p.NumClasses()
	nets := make([]*dnn.Network, synth.NumLocations)
	acc := make([][]float64, synth.NumLocations)
	m := ensemble.NewMatrix(synth.NumLocations, classes)
	for loc := 0; loc < synth.NumLocations; loc++ {
		rng := rand.New(rand.NewSource(42 + int64(loc)))
		nets[loc] = dnn.NewShallowHARNetwork(rng, dnn.DefaultHARConfig(synth.Channels, experiments.Window, classes))
		acc[loc] = make([]float64, classes)
		for c := 0; c < classes; c++ {
			acc[loc][c] = 0.4 + 0.1*float64((loc+c)%3)
			m.Set(loc, c, 0.01+0.005*float64((loc+2*c)%4))
		}
	}
	sys := &experiments.System{Profile: p, NetsB1: nets, NetsB2: nets,
		Matrix: m, AccTable: acc, Ranks: schedule.NewRankTable(acc)}
	return NewModel("MHEALTH", sys)
}

func tinyRegistry() *Registry {
	return NewRegistry(func(string) (*Model, error) { return tinyModel(), nil })
}

// fakeClock is a deterministic eviction clock.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func TestManagerLRUEviction(t *testing.T) {
	m := NewManager(Config{Registry: tinyRegistry(), Shards: 1, MaxSessions: 2, Workers: 1})
	defer m.Close()
	s1, err := m.Create("MHEALTH", 1, Opts{})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := m.Create("MHEALTH", 2, Opts{})
	if err != nil {
		t.Fatal(err)
	}
	// Touch s1 so s2 becomes the LRU victim.
	if _, err := m.Get(s1.ID()); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Create("MHEALTH", 3, Opts{}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Get(s1.ID()); err != nil {
		t.Errorf("recently-used session evicted: %v", err)
	}
	if _, err := m.Get(s2.ID()); !errors.Is(err, ErrNotFound) {
		t.Errorf("LRU session still live, err=%v", err)
	}
	snap := m.Snapshot()
	if snap.SessionsActive != 2 || snap.SessionsEvicted != 1 || snap.SessionsCreated != 3 {
		t.Errorf("snapshot = %+v, want active=2 evicted=1 created=3", snap)
	}
}

func TestManagerTTLEviction(t *testing.T) {
	clock := &fakeClock{now: time.Unix(1000, 0)}
	m := NewManager(Config{Registry: tinyRegistry(), Shards: 2, TTL: time.Minute, Workers: 1, Now: clock.Now})
	defer m.Close()
	s1, _ := m.Create("MHEALTH", 1, Opts{})
	clock.Advance(30 * time.Second)
	s2, _ := m.Create("MHEALTH", 2, Opts{})
	clock.Advance(45 * time.Second) // s1 idle 75s, s2 idle 45s
	if n := m.EvictExpired(); n != 1 {
		t.Fatalf("EvictExpired = %d, want 1", n)
	}
	if _, err := m.Get(s1.ID()); !errors.Is(err, ErrNotFound) {
		t.Errorf("expired session still live, err=%v", err)
	}
	if _, err := m.Get(s2.ID()); err != nil {
		t.Errorf("fresh session evicted: %v", err)
	}
	// The Get above refreshed s2's TTL.
	clock.Advance(50 * time.Second)
	if n := m.EvictExpired(); n != 0 {
		t.Errorf("EvictExpired after touch = %d, want 0", n)
	}
}

// prop: when the queue is saturated, Classify sheds with ErrSaturated
// instead of queueing, and the shed counter moves.
func TestManagerClassifySheds(t *testing.T) {
	m := NewManager(Config{Registry: tinyRegistry(), QueueDepth: 1, Workers: 1})
	s, err := m.Create("MHEALTH", 1, Opts{})
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{})
	release := make(chan struct{})
	// Occupy the single worker, then fill the depth-1 buffer.
	if !m.queue.submit(func() { close(started); <-release }) {
		t.Fatal("blocker rejected")
	}
	<-started
	if !m.queue.submit(func() {}) {
		t.Fatal("filler rejected")
	}
	_, err = m.Classify(context.Background(), s.ID(), nil)
	if !errors.Is(err, ErrSaturated) {
		t.Fatalf("Classify on saturated queue: err=%v, want ErrSaturated", err)
	}
	if snap := m.Snapshot(); snap.RequestsShed != 1 {
		t.Errorf("RequestsShed = %d, want 1", snap.RequestsShed)
	}
	close(release)
	m.Close()
}

// prop: Close drains — every accepted classify completes, and requests
// arriving after Close fail with ErrShutdown.
func TestManagerCloseDrains(t *testing.T) {
	m := NewManager(Config{Registry: tinyRegistry(), QueueDepth: 64, Workers: 2})
	s, err := m.Create("MHEALTH", 1, Opts{})
	if err != nil {
		t.Fatal(err)
	}
	const rounds = 20
	var wg sync.WaitGroup
	wg.Add(rounds)
	for i := 0; i < rounds; i++ {
		go func() {
			defer wg.Done()
			_, err := m.Classify(context.Background(), s.ID(), []SensorInput{{Sensor: 0, Class: 1, Confidence: 0.02}})
			if err != nil {
				t.Errorf("classify: %v", err)
			}
		}()
	}
	wg.Wait()
	m.Close()
	snap := m.Snapshot()
	if snap.RequestsDone != snap.RequestsAccepted || snap.RequestsDone != rounds {
		t.Errorf("done=%d accepted=%d, want both %d (accepted work must complete)",
			snap.RequestsDone, snap.RequestsAccepted, rounds)
	}
	if _, err := m.Classify(context.Background(), s.ID(), nil); !errors.Is(err, ErrShutdown) {
		t.Errorf("classify after Close: err=%v, want ErrShutdown", err)
	}
	if _, err := m.Create("MHEALTH", 9, Opts{}); !errors.Is(err, ErrShutdown) {
		t.Errorf("create after Close: err=%v, want ErrShutdown", err)
	}
}

// prop: deleting a session retires its telemetry into the aggregate
// instead of losing it.
func TestManagerTelemetryRetires(t *testing.T) {
	m := NewManager(Config{Registry: tinyRegistry(), Workers: 1})
	defer m.Close()
	s, _ := m.Create("MHEALTH", 1, Opts{})
	for i := 0; i < 5; i++ {
		if _, err := m.Classify(context.Background(), s.ID(), []SensorInput{{Sensor: i % 3, Class: 0, Confidence: 0.01}}); err != nil {
			t.Fatal(err)
		}
	}
	before := m.Telemetry()
	if err := m.Delete(s.ID()); err != nil {
		t.Fatal(err)
	}
	after := m.Telemetry()
	if before.FreshVotes == 0 {
		t.Fatal("no fresh votes recorded")
	}
	if after.FreshVotes != before.FreshVotes || after.AdaptationUpdates != before.AdaptationUpdates {
		t.Errorf("telemetry lost on delete: before fresh=%d adapts=%d, after fresh=%d adapts=%d",
			before.FreshVotes, before.AdaptationUpdates, after.FreshVotes, after.AdaptationUpdates)
	}
}

// prop: the registry builds each profile exactly once, even under
// concurrent first access.
func TestRegistrySingleFlight(t *testing.T) {
	var builds int32
	var mu sync.Mutex
	reg := NewRegistry(func(string) (*Model, error) {
		mu.Lock()
		builds++
		mu.Unlock()
		return tinyModel(), nil
	})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := reg.Get("MHEALTH"); err != nil {
				t.Errorf("get: %v", err)
			}
		}()
	}
	wg.Wait()
	if builds != 1 {
		t.Fatalf("built %d times, want 1", builds)
	}
}

// prop (ISSUE 9): SetPressure opens a serve-side stress window on the
// classify path only — forced shed rejects exactly every Nth classify with
// ErrSaturated and counts it, worker delay stretches job latency, and the
// zero Pressure closes the window without resetting the shed cadence.
func TestManagerSetPressure(t *testing.T) {
	m := NewManager(Config{Registry: tinyRegistry()})
	defer m.Close()
	s, err := m.Create("MHEALTH", 1, Opts{})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetPressure(Pressure{WorkerDelay: -time.Millisecond}); err == nil {
		t.Fatal("negative worker delay accepted")
	}
	if err := m.SetPressure(Pressure{ShedEvery: -1}); err == nil {
		t.Fatal("negative shed-every accepted")
	}
	if err := m.SetPressure(Pressure{ShedEvery: 3}); err != nil {
		t.Fatal(err)
	}
	if got := m.Pressure(); got.ShedEvery != 3 {
		t.Fatalf("Pressure().ShedEvery = %d, want 3", got.ShedEvery)
	}
	in := []SensorInput{{Sensor: 0, Class: 1, Confidence: 0.02}}
	shed := 0
	for k := 0; k < 9; k++ {
		_, err := m.Classify(context.Background(), s.ID(), in)
		switch {
		case errors.Is(err, ErrSaturated):
			shed++
		case err != nil:
			t.Fatalf("classify %d: %v", k, err)
		}
	}
	if shed != 3 {
		t.Fatalf("shed %d of 9 classifies at ShedEvery=3, want 3", shed)
	}
	if snap := m.Snapshot(); snap.RequestsShed != 3 {
		t.Fatalf("RequestsShed = %d, want 3", snap.RequestsShed)
	}
	// Close the window: classifies flow freely again, and session CRUD was
	// never pressured.
	if err := m.SetPressure(Pressure{}); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 6; k++ {
		if _, err := m.Classify(context.Background(), s.ID(), in); err != nil {
			t.Fatalf("classify after window close: %v", err)
		}
	}
	// Worker delay occupies the worker: a single classify takes at least the
	// injected latency end to end.
	if err := m.SetPressure(Pressure{WorkerDelay: 30 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := m.Classify(context.Background(), s.ID(), in); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Fatalf("classify under 30ms worker delay took %v", d)
	}
}

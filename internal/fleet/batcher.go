package fleet

import (
	"sync"
	"time"

	"origin/internal/synth"
	"origin/internal/tensor"
)

// Micro-batching for server-side window inference.
//
// Scoring a raw IMU window is a pure function of (model, sensor, window):
// it reads only the shared immutable weights and touches no session state.
// That makes it the one stage of a classify round that can be coalesced
// across sessions without breaking the determinism contract — provided the
// batched kernels are bit-identical to the single-window path, which
// dnn.PredictBatch guarantees (see internal/dnn/batch.go). Requests for the
// same (model, sensor) pair that arrive together are scored in one
// ForwardBatch over the blocked GEMM kernels and demultiplexed back to their
// waiting sessions.
//
// Batching is opportunistic by default: a batcher drains whatever is already
// queued (up to the batch cap) and flushes immediately, so an idle server
// adds no latency — batches only form when concurrent load has already
// queued windows. An optional hold window (Config.BatchHold) trades p50
// latency for larger batches under bursty load.

// windowScore is the outcome of scoring one raw window.
type windowScore struct {
	class int
	conf  float64
}

// scorer resolves the raw-window inputs of one classify round to votes.
// sensors[i] is the voter index of windows[i]; every window is non-nil and
// already validated against the model geometry.
type scorer interface {
	scoreWindows(sensors []int, windows []*tensor.Tensor) []windowScore
}

// directScorer is the unbatched path: borrow one pooled net set and run the
// single-window Predict per window. Standalone sessions (the facade, replay
// tests) and managers with batching disabled use it.
type directScorer struct {
	m *Model
}

func (d directScorer) scoreWindows(sensors []int, windows []*tensor.Tensor) []windowScore {
	out := make([]windowScore, len(sensors))
	if d.m.Int8() {
		qnets := d.m.acquireQNets()
		defer d.m.releaseQNets(qnets)
		for i, w := range windows {
			class, probs := qnets[sensors[i]].Predict(w)
			out[i] = windowScore{class: class, conf: probs.Variance()}
		}
		return out
	}
	nets := d.m.acquireNets()
	defer d.m.releaseNets(nets)
	for i, w := range windows {
		class, probs := nets[sensors[i]].Predict(w)
		out[i] = windowScore{class: class, conf: probs.Variance()}
	}
	return out
}

// scoreJob is one window handed to a sensor's batcher.
type scoreJob struct {
	idx    int
	window *tensor.Tensor
	reply  chan<- scoredJob
}

// scoredJob carries a result back to the round that submitted it.
type scoredJob struct {
	idx   int
	score windowScore
}

// batcherMetrics is the tiny atomically-updated slice of Manager metrics the
// batchers feed (nil-safe for standalone use in tests).
type batcherMetrics interface {
	noteBatch(windows int)
}

// sensorBatcher coalesces windows bound for one (model, sensor) pair.
type sensorBatcher struct {
	model    *Model
	sensor   int
	jobs     chan scoreJob
	maxBatch int
	hold     time.Duration
	metrics  batcherMetrics

	// slab is the reusable batch input buffer and scores the reusable
	// per-flush result buffer; both live on the batcher goroutine only.
	slab   []float64
	scores []windowScore
}

func (b *sensorBatcher) run(done *sync.WaitGroup) {
	defer done.Done()
	pending := make([]scoreJob, 0, b.maxBatch)
	for {
		j, ok := <-b.jobs
		if !ok {
			return
		}
		pending = append(pending[:0], j)
		open := b.collect(&pending)
		b.flush(pending)
		if !open {
			return
		}
	}
}

// collect gathers more queued jobs into pending, up to the batch cap. With
// no hold it never waits: it drains what is already there and returns. It
// reports whether the jobs channel is still open.
func (b *sensorBatcher) collect(pending *[]scoreJob) bool {
	if b.hold <= 0 {
		for len(*pending) < b.maxBatch {
			select {
			case j, ok := <-b.jobs:
				if !ok {
					return false
				}
				*pending = append(*pending, j)
			default:
				return true
			}
		}
		return true
	}
	timer := time.NewTimer(b.hold)
	defer timer.Stop()
	for len(*pending) < b.maxBatch {
		select {
		case j, ok := <-b.jobs:
			if !ok {
				return false
			}
			*pending = append(*pending, j)
		case <-timer.C:
			return true
		}
	}
	return true
}

// flush scores pending in one batched forward pass and demultiplexes the
// results to the rounds that submitted them.
func (b *sensorBatcher) flush(pending []scoreJob) {
	if len(pending) == 0 {
		return
	}
	n := len(pending)
	wlen := synth.Channels * b.model.Window
	if cap(b.slab) < n*wlen {
		b.slab = make([]float64, n*wlen)
	}
	slab := b.slab[:n*wlen]
	for i, j := range pending {
		copy(slab[i*wlen:(i+1)*wlen], j.window.Data())
	}
	input := tensor.FromSlice(slab, n, synth.Channels, b.model.Window)

	// Materialise every score, then release the borrowed nets, then demux.
	// The probs tensor aliases the net's own scratch, and reply sends can
	// block on slow consumers — holding a pooled net across the demux would
	// both starve the pool under load and read scratch that another borrower
	// could be overwriting.
	if cap(b.scores) < n {
		b.scores = make([]windowScore, n)
	}
	scores := b.scores[:n]
	if b.model.Int8() {
		qnets := b.model.acquireQNets()
		classes, probs := qnets[b.sensor].PredictBatch(input)
		for i := range pending {
			scores[i] = windowScore{class: classes[i], conf: probs.Row(i).Variance()}
		}
		b.model.releaseQNets(qnets)
	} else {
		nets := b.model.acquireNets()
		classes, probs := nets[b.sensor].PredictBatch(input)
		for i := range pending {
			scores[i] = windowScore{class: classes[i], conf: probs.Row(i).Variance()}
		}
		b.model.releaseNets(nets)
	}
	for i, j := range pending {
		j.reply <- scoredJob{idx: j.idx, score: scores[i]}
	}
	if b.metrics != nil {
		b.metrics.noteBatch(n)
	}
}

// batchScorer fans one round's windows out to the per-sensor batchers and
// reassembles the results in request order.
type batchScorer struct {
	sensors []*sensorBatcher
}

func (b *batchScorer) scoreWindows(sensors []int, windows []*tensor.Tensor) []windowScore {
	out := make([]windowScore, len(sensors))
	reply := make(chan scoredJob, len(sensors))
	for i, sensor := range sensors {
		b.sensors[sensor].jobs <- scoreJob{idx: i, window: windows[i], reply: reply}
	}
	for range sensors {
		r := <-reply
		out[r.idx] = r.score
	}
	return out
}

// modelBatchers owns the batcher set of every model a manager serves.
type modelBatchers struct {
	maxBatch int
	hold     time.Duration
	metrics  batcherMetrics

	mu      sync.Mutex
	closed  bool
	scorers map[*Model]*batchScorer
	wg      sync.WaitGroup
}

func newModelBatchers(maxBatch int, hold time.Duration, metrics batcherMetrics) *modelBatchers {
	return &modelBatchers{
		maxBatch: maxBatch,
		hold:     hold,
		metrics:  metrics,
		scorers:  map[*Model]*batchScorer{},
	}
}

// scorerFor returns (starting if needed) the batch scorer of a model, or nil
// after close — callers then fall back to the direct scorer.
func (mb *modelBatchers) scorerFor(m *Model) scorer {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	if mb.closed {
		return nil
	}
	if sc, ok := mb.scorers[m]; ok {
		return sc
	}
	sc := &batchScorer{sensors: make([]*sensorBatcher, m.Sensors())}
	for i := range sc.sensors {
		b := &sensorBatcher{
			model:    m,
			sensor:   i,
			jobs:     make(chan scoreJob, 4*mb.maxBatch),
			maxBatch: mb.maxBatch,
			hold:     mb.hold,
			metrics:  mb.metrics,
		}
		sc.sensors[i] = b
		mb.wg.Add(1)
		go b.run(&mb.wg)
	}
	mb.scorers[m] = sc
	return sc
}

// close stops every batcher after in-flight work has drained. The caller
// (Manager.Close) must have already drained the classification queue: only
// queue workers submit to batchers, so at this point no new jobs can arrive.
func (mb *modelBatchers) close() {
	mb.mu.Lock()
	if mb.closed {
		mb.mu.Unlock()
		mb.wg.Wait()
		return
	}
	mb.closed = true
	for _, sc := range mb.scorers {
		for _, b := range sc.sensors {
			close(b.jobs)
		}
	}
	mb.mu.Unlock()
	mb.wg.Wait()
}

var _ scorer = directScorer{}
var _ scorer = (*batchScorer)(nil)

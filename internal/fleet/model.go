// Package fleet is the multi-user serving layer of the reproduction: it
// turns the single-wearer facade (one trained System, one host device, one
// simulated body-area network) into a session service able to hold
// host-side state for many concurrent users at once.
//
// The split mirrors what the paper's design implies for a deployment at
// scale: the expensive artefacts — the trained per-location DNNs, the
// derived accuracy and rank tables, the initial confidence matrix — are
// population-level and identical for every wearer, while the state that
// personalises the ensemble (the recall store and the adaptively-updated
// confidence matrix, §III-B/§III-C) is strictly per user. A Registry
// therefore builds each profile's System exactly once and shares it
// read-only across all sessions; a Session clones only the small mutable
// state; and a Manager bounds how many sessions and how much concurrent
// classification work the process accepts, shedding load instead of
// queueing without limit.
//
// Concurrency contract:
//
//   - The registry's System is never mutated after build. Sessions receive
//     their confidence matrix via ensemble.Matrix.Clone, whose rows share
//     no backing storage with the original (pinned by tests in
//     internal/ensemble), so per-session adaptation cannot bleed across
//     users or back into the registry.
//   - The shared DNNs are stateful during a forward pass (layers cache
//     activations — see dnn.Layer), so inference never runs on the
//     registry's own nets: each Model keeps a pool of cloned net sets and
//     classification borrows a set for the duration of one request.
//   - A Session serialises its own requests with a mutex; its
//     classification sequence depends only on the order of its own
//     requests, never on how other sessions' work interleaves — that is
//     the determinism contract the replay tests pin.
package fleet

import (
	"fmt"
	"sync"
	"sync/atomic"

	"origin/internal/dnn"
	"origin/internal/ensemble"
	"origin/internal/experiments"
	"origin/internal/synth"
)

// Model is the immutable, shareable half of a deployment: one trained
// System plus a pool of cloned net sets for concurrent inference. All
// fields are read-only after NewModel; every mutable artefact a session
// needs is cloned out of it.
type Model struct {
	// Name is the profile name the model was built for.
	Name string
	// System is the trained deployment. Treat as deeply read-only: nets,
	// matrix, accuracy table and rank table are shared by every session.
	System *experiments.System
	// Window is the per-sensor IMU window length (samples) the nets expect.
	Window int

	nets sync.Pool // of []*dnn.Network — B2 clones for concurrent Predict

	// Int8 serving path (opt-in via Config.Quantized / EnableInt8): the
	// per-location nets compiled to integer stages once, then cloned per
	// borrow — a clone shares the frozen int8 weights and owns only scratch.
	qonce sync.Once
	qerr  error
	qon   atomic.Bool
	qnets sync.Pool // of []*dnn.QuantizedNetwork
}

// NewModel wraps a trained System for serving. The System must not be
// mutated afterwards.
func NewModel(name string, sys *experiments.System) *Model {
	if sys == nil {
		panic("fleet: NewModel requires a System")
	}
	m := &Model{Name: name, System: sys, Window: experiments.Window}
	m.nets.New = func() any { return sys.CloneNetsB2() }
	return m
}

// Classes returns the number of activity classes.
func (m *Model) Classes() int { return m.System.Profile.NumClasses() }

// Sensors returns the number of sensor locations.
func (m *Model) Sensors() int { return len(m.System.NetsB2) }

// Activity returns the class label for a class id, or "abstain" for -1.
func (m *Model) Activity(class int) string {
	if class < 0 || class >= m.Classes() {
		return "abstain"
	}
	return m.System.Profile.Activities[class]
}

// NewMatrix returns a fresh per-session confidence matrix: an independent
// clone of the registry's initial matrix.
func (m *Model) NewMatrix() *ensemble.Matrix { return m.System.Matrix.Clone() }

// acquireNets borrows a cloned net set for one inference; return it with
// releaseNets. The registry's own nets never run Forward (layers cache
// activations and are not safe for concurrent use).
func (m *Model) acquireNets() []*dnn.Network { return m.nets.Get().([]*dnn.Network) }

func (m *Model) releaseNets(nets []*dnn.Network) { m.nets.Put(nets) }

// EnableInt8 compiles the int8 twin of every per-location net and switches
// the model's scorers onto the quantized hot path. Compilation happens once
// per model (idempotent, concurrency-safe); the first error is sticky so a
// model that cannot be expressed in integer stages never half-enables.
func (m *Model) EnableInt8() error {
	m.qonce.Do(func() {
		qs := make([]*dnn.QuantizedNetwork, len(m.System.NetsB2))
		for i, n := range m.System.NetsB2 {
			q, err := dnn.NewQuantizedNetwork(n)
			if err != nil {
				m.qerr = fmt.Errorf("fleet: int8 compile of sensor %d net: %w", i, err)
				return
			}
			qs[i] = q
		}
		m.qnets.New = func() any {
			c := make([]*dnn.QuantizedNetwork, len(qs))
			for i, q := range qs {
				c[i] = q.Clone()
			}
			return c
		}
		m.qon.Store(true)
	})
	return m.qerr
}

// Int8 reports whether the int8 inference path is enabled for this model.
func (m *Model) Int8() bool { return m.qon.Load() }

// acquireQNets borrows a cloned int8 net set; only valid after a successful
// EnableInt8. Clones share the frozen weights and own only per-borrow
// scratch, so a borrow is cheap and safe for concurrent use.
func (m *Model) acquireQNets() []*dnn.QuantizedNetwork {
	return m.qnets.Get().([]*dnn.QuantizedNetwork)
}

func (m *Model) releaseQNets(nets []*dnn.QuantizedNetwork) { m.qnets.Put(nets) }

// BuildFunc produces a served model for a profile name. The default
// builder trains (or loads from cache) via experiments.BuildSystem.
type BuildFunc func(profile string) (*Model, error)

// DefaultBuild is the production model builder: it validates the profile
// name up front (BuildSystem panics on unknown names) and then trains or
// loads the full System.
func DefaultBuild(profile string) (*Model, error) {
	if !experiments.KnownProfile(profile) {
		return nil, fmt.Errorf("fleet: unknown profile %q (want one of %v)", profile, experiments.ProfileNames())
	}
	return NewModel(profile, experiments.BuildSystem(profile)), nil
}

// Registry builds and caches one Model per profile. Builds are
// single-flight per profile: concurrent Get calls for the same profile
// share one build, and a build for one profile never blocks lookups of
// another (model builds can take minutes).
type Registry struct {
	build BuildFunc

	mu      sync.Mutex
	entries map[string]*registryEntry
}

type registryEntry struct {
	once  sync.Once
	model *Model
	err   error
}

// NewRegistry returns a registry using the given builder (nil selects
// DefaultBuild).
func NewRegistry(build BuildFunc) *Registry {
	if build == nil {
		build = DefaultBuild
	}
	return &Registry{build: build, entries: map[string]*registryEntry{}}
}

// Get returns the model for a profile, building it on first use.
func (r *Registry) Get(profile string) (*Model, error) {
	r.mu.Lock()
	e, ok := r.entries[profile]
	if !ok {
		e = &registryEntry{}
		r.entries[profile] = e
	}
	r.mu.Unlock()
	e.once.Do(func() { e.model, e.err = r.build(profile) })
	return e.model, e.err
}

// Profiles returns the profile names with a completed, successful build.
func (r *Registry) Profiles() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []string
	for name, e := range r.entries {
		if e.model != nil {
			out = append(out, name)
		}
	}
	return out
}

// NumSensors is the sensor count every current profile deploys (the
// paper's chest / left-ankle / right-wrist network).
const NumSensors = synth.NumLocations

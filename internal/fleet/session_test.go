package fleet

import (
	"errors"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"origin/internal/ensemble"
	"origin/internal/synth"
	"origin/internal/tensor"
)

// voteStream produces a deterministic per-round vote sequence from a seed.
func voteStream(m *Model, seed int64, rounds int) [][]SensorInput {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]SensorInput, rounds)
	for k := 0; k < rounds; k++ {
		out[k] = []SensorInput{{
			Sensor:     k % m.Sensors(),
			Class:      rng.Intn(m.Classes()),
			Confidence: 0.01 + 0.05*rng.Float64(),
		}}
	}
	return out
}

func classSeq(t *testing.T, s *Session, stream [][]SensorInput) []int {
	t.Helper()
	seq := make([]int, len(stream))
	for k, in := range stream {
		res, err := s.Classify(in)
		if err != nil {
			t.Fatalf("round %d: %v", k, err)
		}
		if res.Slot != k {
			t.Fatalf("round %d: slot %d", k, res.Slot)
		}
		seq[k] = res.Class
	}
	return seq
}

func TestSessionValidation(t *testing.T) {
	m := tinyModel()
	if _, err := NewSession("s", 1, m, Opts{StaleLimit: -1}); !errors.Is(err, ErrInvalid) {
		t.Errorf("negative stale limit: err=%v", err)
	}
	if _, err := NewSession("s", 1, m, Opts{Quorum: m.Sensors() + 1}); !errors.Is(err, ErrInvalid) {
		t.Errorf("oversized quorum: err=%v", err)
	}
	s, err := NewSession("s", 1, m, Opts{})
	if err != nil {
		t.Fatal(err)
	}
	bad := []SensorInput{
		{Sensor: -1, Class: 0, Confidence: 0.1},
		{Sensor: m.Sensors(), Class: 0, Confidence: 0.1},
		{Sensor: 0, Class: m.Classes(), Confidence: 0.1},
		{Sensor: 0, Class: -1, Confidence: 0.1},
		{Sensor: 0, Class: 0, Confidence: -0.5},
		{Sensor: 0, Window: tensor.New(synth.Channels, m.Window+1)},
		{Sensor: 0, Window: tensor.New(synth.Channels * m.Window)},
	}
	for i, in := range bad {
		if _, err := s.Classify([]SensorInput{in}); !errors.Is(err, ErrInvalid) {
			t.Errorf("bad input %d accepted: err=%v", i, err)
		}
	}
	// A rejected round must not consume a slot.
	if got := s.Info().Slots; got != 0 {
		t.Errorf("slots after rejected rounds = %d, want 0", got)
	}
}

// prop (regression): a round carrying two inputs for the same sensor is
// rejected as ErrInvalid before any state moves — a duplicate vote would
// double-count one location in the ensemble fusion and corrupt its recall
// entry. Window and precomputed-vote inputs collide the same way.
func TestSessionRejectsDuplicateSensor(t *testing.T) {
	m := tinyModel()
	s, err := NewSession("d", 1, m, Opts{})
	if err != nil {
		t.Fatal(err)
	}
	dup := [][]SensorInput{
		{
			{Sensor: 1, Class: 0, Confidence: 0.1},
			{Sensor: 0, Class: 1, Confidence: 0.2},
			{Sensor: 1, Class: 2, Confidence: 0.3},
		},
		{
			{Sensor: 0, Window: tensor.New(synth.Channels, m.Window)},
			{Sensor: 0, Class: 1, Confidence: 0.1},
		},
	}
	for i, inputs := range dup {
		if _, err := s.Classify(inputs); !errors.Is(err, ErrInvalid) {
			t.Errorf("duplicate round %d accepted: err=%v", i, err)
		}
	}
	if got := s.Info().Slots; got != 0 {
		t.Errorf("slots after rejected duplicate rounds = %d, want 0", got)
	}
	// Distinct sensors in one round remain valid.
	ok := []SensorInput{
		{Sensor: 0, Class: 0, Confidence: 0.1},
		{Sensor: 1, Class: 0, Confidence: 0.1},
	}
	if _, err := s.Classify(ok); err != nil {
		t.Fatalf("distinct-sensor round rejected: %v", err)
	}
}

// prop: Opts.Validate boundary cases — a quorum of exactly the sensor count
// is the strictest valid setting (every sensor must vote), and a stale limit
// of zero means "keep recalled votes indefinitely", not "reject".
func TestOptsValidateEdges(t *testing.T) {
	m := tinyModel()
	if err := (Opts{Quorum: m.Sensors()}).Validate(m); err != nil {
		t.Errorf("quorum == Sensors() rejected: %v", err)
	}
	if err := (Opts{Quorum: m.Sensors() + 1}).Validate(m); !errors.Is(err, ErrInvalid) {
		t.Errorf("quorum == Sensors()+1 accepted: err=%v", err)
	}
	if err := (Opts{StaleLimit: 0}).Validate(m); err != nil {
		t.Errorf("stale limit 0 rejected: %v", err)
	}
	if err := (Opts{StaleLimit: -1}).Validate(m); !errors.Is(err, ErrInvalid) {
		t.Errorf("negative stale limit accepted: err=%v", err)
	}
	// A session honouring the full quorum abstains when only one of the
	// sensors votes.
	s, err := NewSession("q", 1, m, Opts{Quorum: m.Sensors()})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Classify([]SensorInput{{Sensor: 0, Class: 1, Confidence: 0.2}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Class != -1 {
		t.Errorf("quorum %d with 1 vote classified %d, want abstain", m.Sensors(), res.Class)
	}
}

// prop (determinism contract): a session's classification sequence depends
// only on its own request order. Replaying the same stream on a fresh
// session — serially or while other sessions hammer the same shared model
// concurrently — yields the identical sequence.
func TestSessionDeterministicReplay(t *testing.T) {
	const rounds = 120
	m := tinyModel()
	stream := voteStream(m, 7, rounds)

	serial, err := NewSession("serial", 1, m, Opts{})
	if err != nil {
		t.Fatal(err)
	}
	want := classSeq(t, serial, stream)

	// Replay the same stream on many sessions concurrently, with extra
	// noise sessions running unrelated streams against the same model.
	const replicas = 4
	got := make([][]int, replicas)
	var wg sync.WaitGroup
	for i := 0; i < replicas; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s, err := NewSession("r", int64(i), m, Opts{})
			if err != nil {
				t.Error(err)
				return
			}
			got[i] = classSeq(t, s, stream)
		}(i)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s, err := NewSession("noise", 100+int64(i), m, Opts{})
			if err != nil {
				t.Error(err)
				return
			}
			classSeq(t, s, voteStream(m, 900+int64(i), rounds))
		}(i)
	}
	wg.Wait()
	for i := 0; i < replicas; i++ {
		if !reflect.DeepEqual(got[i], want) {
			t.Fatalf("replica %d diverged from serial replay:\n got %v\nwant %v", i, got[i], want)
		}
	}
}

// prop: window requests are classified server-side deterministically —
// the same IMU window stream produces the same sequence on every session.
func TestSessionWindowDeterminism(t *testing.T) {
	const rounds = 24
	m := tinyModel()
	run := func() []int {
		s, err := NewSession("w", 1, m, Opts{})
		if err != nil {
			t.Fatal(err)
		}
		gen := synth.NewGenerator(m.System.Profile, synth.NewUser(1), m.Window, 5)
		seq := make([]int, rounds)
		for k := 0; k < rounds; k++ {
			w := gen.WindowFor(k%m.Classes(), synth.Location(k%m.Sensors()))
			res, err := s.Classify([]SensorInput{{Sensor: k % m.Sensors(), Window: w}})
			if err != nil {
				t.Fatalf("round %d: %v", k, err)
			}
			if len(res.Votes) != 1 || res.Votes[0].Confidence <= 0 {
				t.Fatalf("round %d: window vote not resolved: %+v", k, res.Votes)
			}
			seq[k] = res.Class
		}
		return seq
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("window replay diverged:\n got %v\nwant %v", a, b)
	}
}

// prop: Freeze pins the confidence matrix (the static ablation); the
// default session adapts it, and neither touches the model's shared matrix.
func TestSessionFreezeAndIsolation(t *testing.T) {
	const rounds = 60
	m := tinyModel()
	shared := m.System.Matrix.Clone()

	frozen, err := NewSession("f", 1, m, Opts{Freeze: true})
	if err != nil {
		t.Fatal(err)
	}
	adaptive, err := NewSession("a", 2, m, Opts{})
	if err != nil {
		t.Fatal(err)
	}
	frozenStart := frozen.Matrix().Clone()
	stream := voteStream(m, 11, rounds)
	classSeq(t, frozen, stream)
	classSeq(t, adaptive, stream)

	if got := frozen.Info().Adapts; got != 0 {
		t.Errorf("frozen session applied %d adapts, want 0", got)
	}
	if !matrixEqual(frozen.Matrix(), frozenStart, m) {
		t.Error("frozen session's matrix changed")
	}
	if got := adaptive.Info().Adapts; got == 0 {
		t.Error("adaptive session applied no adapts")
	}
	if matrixEqual(adaptive.Matrix(), frozenStart, m) {
		t.Error("adaptive session's matrix never moved")
	}
	if !matrixEqual(m.System.Matrix, shared, m) {
		t.Error("session adaptation mutated the shared model matrix")
	}
}

func matrixEqual(a, b *ensemble.Matrix, m *Model) bool {
	for s := 0; s < m.Sensors(); s++ {
		for c := 0; c < m.Classes(); c++ {
			if a.At(s, c) != b.At(s, c) {
				return false
			}
		}
	}
	return true
}

// prop: an empty classify round is valid (recall-only) and never adapts.
func TestSessionEmptyRound(t *testing.T) {
	m := tinyModel()
	s, err := NewSession("e", 1, m, Opts{})
	if err != nil {
		t.Fatal(err)
	}
	// Prime the recall store with one fresh round.
	if _, err := s.Classify([]SensorInput{{Sensor: 0, Class: 2, Confidence: 0.04}}); err != nil {
		t.Fatal(err)
	}
	adapts := s.Info().Adapts
	res, err := s.Classify(nil)
	if err != nil {
		t.Fatalf("empty round rejected: %v", err)
	}
	if res.Slot != 1 {
		t.Errorf("empty round slot = %d, want 1", res.Slot)
	}
	if res.Class != 2 {
		t.Errorf("recall-only round classified %d, want recalled 2", res.Class)
	}
	if got := s.Info().Adapts; got != adapts {
		t.Errorf("empty round adapted the matrix (%d → %d)", adapts, got)
	}
	if got := s.Info().Slots; got != 2 {
		t.Errorf("slots = %d, want 2", got)
	}
}

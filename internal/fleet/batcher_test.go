package fleet_test

import (
	"context"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	"origin/internal/fleet"
	"origin/internal/fleet/fleettest"
	"origin/internal/loadgen"
	"origin/internal/serve"
	"origin/internal/synth"
)

// newBatchServer stands up a serving stack with explicit micro-batching
// configuration.
func newBatchServer(t *testing.T, cfg fleet.Config) (*httptest.Server, *fleet.Manager) {
	t.Helper()
	cfg.Registry = fleettest.NewRegistry()
	mgr := fleet.NewManager(cfg)
	ts := httptest.NewServer(serve.New(serve.Config{Manager: mgr, RequestTimeout: 30 * time.Second}))
	t.Cleanup(func() {
		ts.Close()
		mgr.Close()
	})
	return ts, mgr
}

// prop (ISSUE acceptance): concurrent micro-batched classifies — with a hold
// window forcing real coalescing — produce exactly the sequences of a serial
// facade replay. Run under -race by make verify-serve.
func TestMicroBatchedMatchesSerialReplay(t *testing.T) {
	ts, mgr := newBatchServer(t, fleet.Config{
		QueueDepth: 64,
		Workers:    8,
		BatchSize:  4,
		BatchHold:  2 * time.Millisecond,
	})
	cfg := replayConfig(ts.URL, loadgen.ModeWindows, 6, 10)
	rep, err := loadgen.Run(cfg)
	if err != nil {
		t.Fatalf("loadgen: %v", err)
	}
	for i, tr := range rep.Sessions {
		want := serialReplay(t, &cfg, i)
		if !reflect.DeepEqual(tr.Classes, want) {
			t.Errorf("user %d: micro-batched sequence diverged from serial replay:\n got %v\nwant %v",
				i, tr.Classes, want)
		}
	}
	snap := mgr.Snapshot()
	if snap.WindowsBatched == 0 || snap.BatchFlushes == 0 {
		t.Fatalf("batch path never exercised: %+v", snap)
	}
	if snap.WindowsBatched < snap.BatchFlushes {
		t.Fatalf("windows (%d) < flushes (%d)", snap.WindowsBatched, snap.BatchFlushes)
	}
	t.Logf("windows=%d flushes=%d (mean batch %.2f)",
		snap.WindowsBatched, snap.BatchFlushes,
		float64(snap.WindowsBatched)/float64(snap.BatchFlushes))
}

// prop: BatchSize 1 disables the micro-batcher entirely; results are
// unchanged and the batch counters stay at zero.
func TestBatchSizeOneDisablesBatching(t *testing.T) {
	ts, mgr := newBatchServer(t, fleet.Config{
		QueueDepth: 64,
		Workers:    4,
		BatchSize:  1,
	})
	cfg := replayConfig(ts.URL, loadgen.ModeWindows, 3, 8)
	rep, err := loadgen.Run(cfg)
	if err != nil {
		t.Fatalf("loadgen: %v", err)
	}
	for i, tr := range rep.Sessions {
		want := serialReplay(t, &cfg, i)
		if !reflect.DeepEqual(tr.Classes, want) {
			t.Errorf("user %d diverged with batching disabled:\n got %v\nwant %v", i, tr.Classes, want)
		}
	}
	if snap := mgr.Snapshot(); snap.WindowsBatched != 0 || snap.BatchFlushes != 0 {
		t.Fatalf("batch counters moved with batching disabled: %+v", snap)
	}
}

// prop: a batched and an unbatched manager given identical concurrent window
// streams return identical classifications — batching is invisible in
// results, visible only in throughput.
func TestBatchedAndUnbatchedManagersAgree(t *testing.T) {
	const users, rounds = 5, 8

	run := func(batchSize int, hold time.Duration) [][]int {
		mgr := fleet.NewManager(fleet.Config{
			Registry:   fleettest.NewRegistry(),
			QueueDepth: 64,
			Workers:    8,
			BatchSize:  batchSize,
			BatchHold:  hold,
		})
		defer mgr.Close()

		ids := make([]string, users)
		for i := range ids {
			s, err := mgr.Create("MHEALTH", loadgen.UserID(i), fleet.Opts{})
			if err != nil {
				t.Fatalf("create %d: %v", i, err)
			}
			ids[i] = s.ID()
		}
		out := make([][]int, users)
		var wg sync.WaitGroup
		for i := 0; i < users; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				cfg := replayConfig("", loadgen.ModeWindows, users, rounds)
				st := loadgen.NewStream(&cfg, synth.MHEALTHProfile(), i)
				classes := make([]int, rounds)
				for k := 0; k < rounds; k++ {
					req := st.Next(k)
					inputs, err := serve.Inputs(&req)
					if err != nil {
						t.Errorf("user %d round %d: %v", i, k, err)
						return
					}
					// Retry shed rounds: determinism must survive load.
					for {
						res, err := mgr.Classify(context.Background(), ids[i], inputs)
						if err == fleet.ErrSaturated {
							continue
						}
						if err != nil {
							t.Errorf("user %d round %d: %v", i, k, err)
							return
						}
						classes[k] = res.Class
						break
					}
				}
				out[i] = classes
			}(i)
		}
		wg.Wait()
		return out
	}

	batched := run(6, time.Millisecond)
	direct := run(1, 0)
	for i := range batched {
		if !reflect.DeepEqual(batched[i], direct[i]) {
			t.Errorf("user %d: batched %v vs direct %v", i, batched[i], direct[i])
		}
	}
}

// prop: the int8 serving path preserves the determinism contract — a
// quantized batched manager and a quantized unbatched manager given
// identical concurrent window streams return identical classifications
// (int8 batched and single-window scoring are bit-identical per window),
// and Config.Quantized actually engages the int8 path.
func TestQuantizedManagersAgree(t *testing.T) {
	const users, rounds = 4, 8

	run := func(batchSize int, hold time.Duration) [][]int {
		mgr := fleet.NewManager(fleet.Config{
			Registry:   fleettest.NewRegistry(),
			QueueDepth: 64,
			Workers:    8,
			BatchSize:  batchSize,
			BatchHold:  hold,
			Quantized:  true,
		})
		defer mgr.Close()

		ids := make([]string, users)
		for i := range ids {
			s, err := mgr.Create("MHEALTH", loadgen.UserID(i), fleet.Opts{})
			if err != nil {
				t.Fatalf("create %d: %v", i, err)
			}
			if !s.Model().Int8() {
				t.Fatal("Quantized manager created a session without the int8 path enabled")
			}
			ids[i] = s.ID()
		}
		out := make([][]int, users)
		var wg sync.WaitGroup
		for i := 0; i < users; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				cfg := replayConfig("", loadgen.ModeWindows, users, rounds)
				st := loadgen.NewStream(&cfg, synth.MHEALTHProfile(), i)
				classes := make([]int, rounds)
				for k := 0; k < rounds; k++ {
					req := st.Next(k)
					inputs, err := serve.Inputs(&req)
					if err != nil {
						t.Errorf("user %d round %d: %v", i, k, err)
						return
					}
					for {
						res, err := mgr.Classify(context.Background(), ids[i], inputs)
						if err == fleet.ErrSaturated {
							continue
						}
						if err != nil {
							t.Errorf("user %d round %d: %v", i, k, err)
							return
						}
						classes[k] = res.Class
						break
					}
				}
				out[i] = classes
			}(i)
		}
		wg.Wait()
		return out
	}

	batched := run(6, time.Millisecond)
	direct := run(1, 0)
	for i := range batched {
		if !reflect.DeepEqual(batched[i], direct[i]) {
			t.Errorf("user %d: quantized batched %v vs quantized direct %v", i, batched[i], direct[i])
		}
	}
}

// Close with an idle batcher set must not hang or panic, and must be
// idempotent.
func TestManagerCloseWithBatchersIdempotent(t *testing.T) {
	mgr := fleet.NewManager(fleet.Config{
		Registry:  fleettest.NewRegistry(),
		BatchSize: 8,
	})
	if _, err := mgr.Create("MHEALTH", 1, fleet.Opts{}); err != nil {
		t.Fatal(err)
	}
	mgr.Close()
	mgr.Close()
}

package fleet

import (
	"bytes"
	"flag"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"origin/internal/ensemble"
	"origin/internal/host"
)

var updateGolden = flag.Bool("update", false, "rewrite codec golden files")

// snapshotFixture is a SessionState exercising every field: valid and
// never-reported recall entries, an adapted matrix with non-terminating
// binary fractions, non-zero counters, and a stream attachment.
func snapshotFixture() SessionState {
	m := ensemble.NewMatrix(3, 4)
	m.Alpha = 0.07
	m.UseInstantFresh = false
	for s := 0; s < 3; s++ {
		for c := 0; c < 4; c++ {
			m.Set(s, c, 1e-3+float64(s*4+c)/7.0)
		}
	}
	return SessionState{
		ID:      "s-42",
		User:    -7,
		Profile: "conf-room",
		Opts:    Opts{StaleLimit: 3, Quorum: 2, Freeze: true},
		Slot:    11,
		Device: host.DeviceState{
			Recall: []host.RecallState{
				{Class: 2, Confidence: 0.25, Slot: 10, Valid: true},
				{},
				{Class: 0, Confidence: math.Nextafter(0.5, 1), Slot: 9, Valid: true},
			},
			Anticipated:   2,
			LastFresh:     host.RecallState{Class: 2, Confidence: 0.25, Slot: 10, Valid: true},
			Received:      19,
			AdaptsApplied: 11,
		},
		Matrix: m,
		Counters: SessionCounters{
			Slots: 11, FreshVotes: 19, RecallVotes: 4, AdaptationUpdates: 11, QuorumAbstentions: 1,
		},
		Attachment: []byte{0x01, 0x00, 0xfe, 'a', 't', 't'},
	}
}

func TestSessionCodecRoundTrip(t *testing.T) {
	in := snapshotFixture()
	blob, err := EncodeSessionState(in)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	out, err := DecodeSessionState(blob)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	// Matrices compare by value below; pointers differ.
	if !reflect.DeepEqual(stripMatrix(in), stripMatrix(out)) {
		t.Fatalf("round trip changed the snapshot:\n in=%+v\nout=%+v", in, out)
	}
	if !matricesBitEqual(in.Matrix, out.Matrix) {
		t.Fatal("round trip changed the matrix")
	}
}

func stripMatrix(st SessionState) SessionState {
	st.Matrix = nil
	return st
}

func matricesBitEqual(a, b *ensemble.Matrix) bool {
	if a.Sensors() != b.Sensors() || a.Classes() != b.Classes() ||
		a.Alpha != b.Alpha || a.RecallDiscount != b.RecallDiscount ||
		a.RecallDecayPerSlot != b.RecallDecayPerSlot || a.UseInstantFresh != b.UseInstantFresh {
		return false
	}
	for s := 0; s < a.Sensors(); s++ {
		for c := 0; c < a.Classes(); c++ {
			if math.Float64bits(a.At(s, c)) != math.Float64bits(b.At(s, c)) {
				return false
			}
		}
	}
	return true
}

// TestSessionCodecGolden pins the version-1 wire bytes in both directions:
// today's encoder must reproduce the committed file, and today's decoder must
// accept it. A codec change that breaks either direction strands persisted
// session state across a rolling upgrade — bump SessionCodecVersion instead.
func TestSessionCodecGolden(t *testing.T) {
	path := filepath.Join("testdata", "session_v1.golden")
	blob, err := EncodeSessionState(snapshotFixture())
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, blob, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if !bytes.Equal(blob, want) {
		t.Fatalf("encoder output diverged from %s (%d vs %d bytes); "+
			"if intentional, bump SessionCodecVersion and add a new golden", path, len(blob), len(want))
	}
	st, err := DecodeSessionState(want)
	if err != nil {
		t.Fatalf("decoder rejected the golden snapshot: %v", err)
	}
	if st.ID != "s-42" || st.Slot != 11 || !st.Opts.Freeze || st.Counters.FreshVotes != 19 {
		t.Fatalf("golden decoded to unexpected state: %+v", st)
	}
}

func TestSessionCodecRejectsDamage(t *testing.T) {
	good, err := EncodeSessionState(snapshotFixture())
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":          nil,
		"bad magic":      append([]byte("OSSX"), good[4:]...),
		"future version": append(append([]byte(nil), good[:4]...), append([]byte{0x63}, good[5:]...)...),
		"truncated":      good[:len(good)-2],
		"trailing":       append(append([]byte(nil), good...), 0xff),
	}
	for name, blob := range cases {
		if _, err := DecodeSessionState(blob); err == nil {
			t.Errorf("%s: decode accepted damaged input", name)
		}
	}
}

func TestSessionCodecEncodeRejectsBadState(t *testing.T) {
	for name, mutate := range map[string]func(*SessionState){
		"empty id":       func(st *SessionState) { st.ID = "" },
		"no matrix":      func(st *SessionState) { st.Matrix = nil },
		"negative slot":  func(st *SessionState) { st.Slot = -1 },
		"no recall":      func(st *SessionState) { st.Device.Recall = nil },
		"huge payload":   func(st *SessionState) { st.Attachment = make([]byte, maxAttachment+1) },
		"negative votes": func(st *SessionState) { st.Counters.FreshVotes = -1 },
	} {
		st := snapshotFixture()
		mutate(&st)
		if _, err := EncodeSessionState(st); err == nil {
			t.Errorf("%s: encode accepted a bad snapshot", name)
		}
	}
}

func FuzzDecodeSessionState(f *testing.F) {
	seed, err := EncodeSessionState(snapshotFixture())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte("OSS1"))
	f.Fuzz(func(t *testing.T, b []byte) {
		st, err := DecodeSessionState(b)
		if err != nil {
			return
		}
		// Anything the decoder accepts must re-encode, and the re-encoded form
		// must decode back to the same value (canonical-form equivalence; the
		// raw bytes may differ through non-minimal varints).
		out, err := EncodeSessionState(st)
		if err != nil {
			t.Fatalf("decoded snapshot failed to re-encode: %v", err)
		}
		st2, err := DecodeSessionState(out)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !reflect.DeepEqual(stripMatrix(st), stripMatrix(st2)) || !matricesBitEqual(st.Matrix, st2.Matrix) {
			t.Fatal("re-encode cycle changed the snapshot")
		}
	})
}

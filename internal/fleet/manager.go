package fleet

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"origin/internal/obs"
)

// Sentinel errors the HTTP layer maps onto status codes.
var (
	// ErrNotFound marks a lookup of an unknown (or evicted) session → 404.
	ErrNotFound = errors.New("session not found")
	// ErrSaturated marks a classify rejected because the work queue is
	// full → 429 (shed load rather than queue unboundedly).
	ErrSaturated = errors.New("work queue saturated")
	// ErrShutdown marks a request arriving after Close began → 503.
	ErrShutdown = errors.New("manager shut down")
)

// Config assembles a Manager.
type Config struct {
	// Registry supplies models (nil builds a production registry).
	Registry *Registry
	// Shards is the session-map shard count (default 8). Sharding keeps
	// session lookup contention independent of the session count.
	Shards int
	// MaxSessions caps live sessions (default 4096). The cap is enforced
	// per shard (MaxSessions/Shards, min 1): a full shard evicts its
	// least-recently-used session to admit a new one.
	MaxSessions int
	// TTL, when positive, evicts sessions idle longer than this (checked
	// lazily on create and by EvictExpired sweeps).
	TTL time.Duration
	// QueueDepth bounds the classification queue (default 256); Workers
	// sizes the worker pool (default obs.DefaultWorkers(), raised to
	// BatchSize when micro-batching is on: in-flight classifies bound the
	// windows a batch can coalesce, and batching workers block on batch
	// replies rather than occupying a core).
	QueueDepth int
	Workers    int
	// BatchSize caps how many same-(model,sensor) windows one micro-batched
	// forward pass may coalesce (default 16). 1 disables micro-batching and
	// scores every window individually. Batched and single scoring are
	// bit-identical per window, so this knob affects throughput only.
	BatchSize int
	// BatchHold, when positive, lets a batcher wait up to this long for more
	// windows before flushing a partial batch. The default (0) flushes
	// opportunistically — whatever is already queued goes in one pass, and an
	// idle server pays no added latency, so p99 does not regress.
	BatchHold time.Duration
	// Quantized routes window scoring through the int8 inference hot path:
	// each model's nets are compiled to integer stages the first time a
	// session is created on it (Create fails if a net cannot be expressed in
	// integer stages). Batched and single int8 scoring remain bit-identical
	// per window; int8 vs float accuracy parity is gated separately (see
	// internal/experiments and the dnn parity tests).
	Quantized bool
	// Now is the eviction clock (default time.Now; injectable for tests).
	Now func() time.Time
	// State, when non-nil, externalizes session state: the store holds the
	// authoritative snapshot of every session and this replica's in-memory
	// sessions become a validated cache over it. Create persists the initial
	// snapshot, the serving layer persists one snapshot per classified round
	// (PersistSession), and Get restores from the store whenever it holds a
	// newer version than local memory — which is how a session migrates to
	// this replica after a shard-map change or a peer death.
	State StateStore
}

// Metrics is the serving-side counter set, updated atomically on the hot
// path and rendered by GET /metrics.
type Metrics struct {
	SessionsCreated  atomic.Int64
	SessionsEvicted  atomic.Int64
	SessionsClosed   atomic.Int64
	RequestsAccepted atomic.Int64
	RequestsShed     atomic.Int64
	RequestsDone     atomic.Int64
	// WindowsBatched counts windows scored through the micro-batcher;
	// BatchFlushes counts the batched forward passes that scored them, so
	// WindowsBatched/BatchFlushes is the achieved mean batch size.
	WindowsBatched atomic.Int64
	BatchFlushes   atomic.Int64
	// SessionsRestored counts sessions rebuilt from the state store — each
	// one is a migration this replica absorbed.
	SessionsRestored atomic.Int64
}

// noteBatch records one micro-batched forward pass of n windows.
func (mt *Metrics) noteBatch(n int) {
	mt.WindowsBatched.Add(int64(n))
	mt.BatchFlushes.Add(1)
}

// MetricsSnapshot is a point-in-time copy of the serving counters plus the
// two gauges (live sessions, queued jobs).
type MetricsSnapshot struct {
	SessionsActive   int   `json:"sessionsActive"`
	SessionsCreated  int64 `json:"sessionsCreated"`
	SessionsEvicted  int64 `json:"sessionsEvicted"`
	SessionsClosed   int64 `json:"sessionsClosed"`
	RequestsAccepted int64 `json:"requestsAccepted"`
	RequestsShed     int64 `json:"requestsShed"`
	RequestsDone     int64 `json:"requestsDone"`
	QueueDepth       int   `json:"queueDepth"`
	WindowsBatched   int64 `json:"windowsBatched"`
	BatchFlushes     int64 `json:"batchFlushes"`
	SessionsRestored int64 `json:"sessionsRestored"`
}

// shard is one slice of the session map with its own lock and LRU order
// (front = most recently used).
type shard struct {
	mu       sync.Mutex
	sessions map[string]*Session
	order    *list.List // of *Session
}

// Manager is the fleet session service: a sharded session map with LRU/TTL
// eviction over a shared model registry, plus the bounded classification
// queue. It is safe for concurrent use.
type Manager struct {
	cfg      Config
	reg      *Registry
	shards   []*shard
	queue    *queue
	batchers *modelBatchers // nil when micro-batching is disabled
	metrics  Metrics
	active   atomic.Int64
	nextID   atomic.Int64
	shutdown atomic.Bool

	// Pressure window (SetPressure), read atomically on the classify path.
	pressureDelayNs   atomic.Int64
	pressureShedEvery atomic.Int64
	pressureCounter   atomic.Int64

	retiredMu sync.Mutex
	retired   obs.Telemetry // telemetry of evicted/closed sessions
}

// Pressure is a serve-side stress window a scenario driver can open and
// close mid-run: slow workers (injected per-job latency, backing the queue
// up toward saturation) and forced shed (a deterministic fraction of
// classifies rejected as if the queue were full). Both act on the classify
// path only — session create/get/delete stay unpressured, matching a real
// overload where inference capacity is the bottleneck.
type Pressure struct {
	// WorkerDelay is injected latency per classify job, spent inside the
	// worker after the job is dequeued (so it occupies a worker slot exactly
	// like genuinely slow inference would).
	WorkerDelay time.Duration
	// ShedEvery, when positive, force-sheds every ShedEvery-th classify —
	// counted manager-wide across sessions — before it reaches the queue,
	// surfacing as ErrSaturated/429 to the caller. 1 sheds everything.
	ShedEvery int64
}

// SetPressure swaps the pressure window for classifies submitted from now
// on. The zero Pressure closes the window. The forced-shed counter is NOT
// reset by reconfiguration, so reopening a window mid-run continues the
// every-Nth cadence rather than restarting it.
func (m *Manager) SetPressure(p Pressure) error {
	if p.WorkerDelay < 0 {
		return fmt.Errorf("fleet: negative pressure worker delay %v", p.WorkerDelay)
	}
	if p.ShedEvery < 0 {
		return fmt.Errorf("fleet: negative pressure shed-every %d", p.ShedEvery)
	}
	m.pressureDelayNs.Store(p.WorkerDelay.Nanoseconds())
	m.pressureShedEvery.Store(p.ShedEvery)
	return nil
}

// Pressure returns the pressure window currently in force.
func (m *Manager) Pressure() Pressure {
	return Pressure{
		WorkerDelay: time.Duration(m.pressureDelayNs.Load()),
		ShedEvery:   m.pressureShedEvery.Load(),
	}
}

// NewManager builds and starts a manager (worker pool included).
func NewManager(cfg Config) *Manager {
	if cfg.Registry == nil {
		cfg.Registry = NewRegistry(nil)
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 8
	}
	if cfg.MaxSessions <= 0 {
		cfg.MaxSessions = 4096
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 256
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 16
	}
	if cfg.Workers <= 0 {
		cfg.Workers = obs.DefaultWorkers()
		// Micro-batches can only coalesce windows that are in flight at
		// once, and in-flight classifies are bounded by the worker count —
		// a batching worker spends its time blocked on the batch reply,
		// not on a core. One worker per core (the non-batched default)
		// would cap every batch at one window, so give the pool enough
		// headroom to fill a batch.
		if cfg.BatchSize > 1 && cfg.Workers < cfg.BatchSize {
			cfg.Workers = cfg.BatchSize
		}
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	m := &Manager{cfg: cfg, reg: cfg.Registry}
	m.shards = make([]*shard, cfg.Shards)
	for i := range m.shards {
		m.shards[i] = &shard{sessions: map[string]*Session{}, order: list.New()}
	}
	m.queue = newQueue(cfg.QueueDepth, cfg.Workers)
	if cfg.BatchSize > 1 {
		m.batchers = newModelBatchers(cfg.BatchSize, cfg.BatchHold, &m.metrics)
	}
	return m
}

// perShardCap returns the session cap of one shard.
func (m *Manager) perShardCap() int {
	c := m.cfg.MaxSessions / len(m.shards)
	if c < 1 {
		c = 1
	}
	return c
}

// shardFor hashes a session id onto its shard (FNV-1a).
func (m *Manager) shardFor(id string) *shard {
	h := uint32(2166136261)
	for i := 0; i < len(id); i++ {
		h ^= uint32(id[i])
		h *= 16777619
	}
	return m.shards[h%uint32(len(m.shards))]
}

// Create opens a session on the named profile for a user. The model is
// fetched from the registry (building it on first use); a full shard
// evicts its least-recently-used session to make room.
func (m *Manager) Create(profile string, user int64, o Opts) (*Session, error) {
	return m.createSession(fmt.Sprintf("s-%d", m.nextID.Add(1)), profile, user, o)
}

// ErrExists marks a CreateWithID for an id already in use → 409.
var ErrExists = errors.New("session id already exists")

// CreateWithID opens a session under a caller-chosen id — the router tier
// assigns ids so a session's placement is a pure function of the id and the
// ring, independent of which replica minted it. The id must be non-empty,
// at most 64 bytes, and not already in use (locally or in the state store).
func (m *Manager) CreateWithID(id, profile string, user int64, o Opts) (*Session, error) {
	if id == "" || len(id) > 64 {
		return nil, fmt.Errorf("%w: session id must be 1..64 bytes", ErrInvalid)
	}
	if _, err := m.getLocal(id); err == nil {
		return nil, ErrExists
	}
	if m.cfg.State != nil {
		if _, _, ok, err := m.cfg.State.Load(id); err != nil {
			return nil, err
		} else if ok {
			return nil, ErrExists
		}
	}
	return m.createSession(id, profile, user, o)
}

// createSession is the shared create path behind Create and CreateWithID.
func (m *Manager) createSession(id, profile string, user int64, o Opts) (*Session, error) {
	if m.shutdown.Load() {
		return nil, ErrShutdown
	}
	model, err := m.reg.Get(profile)
	if err != nil {
		return nil, err
	}
	if m.cfg.Quantized {
		if err := model.EnableInt8(); err != nil {
			return nil, err
		}
	}
	s, err := NewSession(id, user, model, o)
	if err != nil {
		return nil, err
	}
	if m.batchers != nil {
		if sc := m.batchers.scorerFor(model); sc != nil {
			s.score = sc
		}
	}
	m.install(s, false)
	m.metrics.SessionsCreated.Add(1)
	// Persist the slot-0 snapshot so the session is adoptable by another
	// replica even if this one dies before the first classified round.
	if m.cfg.State != nil {
		if err := m.persistLocked(s, nil); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// install links a session into its shard (evicting to make room). replace
// unlinks any same-id session WITHOUT retiring its telemetry — the incoming
// session's restored counters already include everything the replaced stale
// cache entry counted, so merging would double-count.
func (m *Manager) install(s *Session, replace bool) {
	now := m.cfg.Now().UnixNano()
	sh := m.shardFor(s.id)
	sh.mu.Lock()
	if replace {
		if old, ok := sh.sessions[s.id]; ok {
			delete(sh.sessions, old.id)
			sh.order.Remove(old.lru)
			old.lru = nil
			m.active.Add(-1)
		}
	}
	m.evictExpiredLocked(sh, now)
	for len(sh.sessions) >= m.perShardCap() {
		m.evictLRULocked(sh)
	}
	s.lastUsed = now
	s.lru = sh.order.PushFront(s)
	sh.sessions[s.id] = s
	sh.mu.Unlock()
	m.active.Add(1)
}

// getLocal returns a session from this replica's memory only, refreshing its
// LRU/TTL position. It never consults the state store.
func (m *Manager) getLocal(id string) (*Session, error) {
	sh := m.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	s, ok := sh.sessions[id]
	if !ok {
		return nil, ErrNotFound
	}
	s.lastUsed = m.cfg.Now().UnixNano()
	sh.order.MoveToFront(s.lru)
	return s, nil
}

// Get returns a live session and refreshes its LRU/TTL position. With a
// state store configured, local memory is only a cache: Get validates it
// against the store's version and restores the newer snapshot when the store
// is ahead — the local copy went stale while another replica owned the
// session. A session found only in the store is restored the same way (the
// migration path after a shard-map change routes the session here).
func (m *Manager) Get(id string) (*Session, error) {
	s, lerr := m.getLocal(id)
	if m.cfg.State == nil {
		return s, lerr
	}
	blob, ver, ok, err := m.cfg.State.Load(id)
	if err != nil {
		return nil, err
	}
	if !ok {
		// Nothing in the store. A local session without a store entry only
		// happens after an explicit Delete raced a Get; treat it as gone.
		return nil, ErrNotFound
	}
	if lerr == nil && int64(s.Slot()) >= ver {
		return s, nil
	}
	return m.restore(blob)
}

// restore rebuilds a session from a stored snapshot and installs it,
// replacing any stale local copy.
func (m *Manager) restore(blob []byte) (*Session, error) {
	if m.shutdown.Load() {
		return nil, ErrShutdown
	}
	st, err := DecodeSessionState(blob)
	if err != nil {
		return nil, err
	}
	model, err := m.reg.Get(st.Profile)
	if err != nil {
		return nil, err
	}
	if m.cfg.Quantized {
		if err := model.EnableInt8(); err != nil {
			return nil, err
		}
	}
	s, err := newSessionFromState(st, model)
	if err != nil {
		return nil, err
	}
	if m.batchers != nil {
		if sc := m.batchers.scorerFor(model); sc != nil {
			s.score = sc
		}
	}
	m.install(s, true)
	m.metrics.SessionsRestored.Add(1)
	return s, nil
}

// PersistSession writes the session's current snapshot (core state plus the
// given stream attachment) to the state store at version = slot. A no-op
// without a store. The serving layer calls this once per classified round,
// after the classify and before the result is released to the client.
func (m *Manager) PersistSession(id string, attachment []byte) error {
	if m.cfg.State == nil {
		return nil
	}
	s, err := m.getLocal(id)
	if err != nil {
		return err
	}
	return m.persistLocked(s, attachment)
}

// persistLocked encodes and stores one session snapshot. The name records
// the invariant: the caller must be the session's single serving goroutine
// (the round lock), so slot cannot advance between State and Put.
func (m *Manager) persistLocked(s *Session, attachment []byte) error {
	st := s.State(attachment)
	blob, err := EncodeSessionState(st)
	if err != nil {
		return err
	}
	return m.cfg.State.Put(st.ID, int64(st.Slot), blob)
}

// StoredState loads and decodes a session's snapshot straight from the
// state store (ok=false when the store has none). The stream front uses it
// to recover its attachment when adopting a migrated session.
func (m *Manager) StoredState(id string) (SessionState, bool, error) {
	if m.cfg.State == nil {
		return SessionState{}, false, nil
	}
	blob, _, ok, err := m.cfg.State.Load(id)
	if err != nil || !ok {
		return SessionState{}, false, err
	}
	st, err := DecodeSessionState(blob)
	if err != nil {
		return SessionState{}, false, err
	}
	return st, true, nil
}

// HasStore reports whether session state is externalized.
func (m *Manager) HasStore() bool { return m.cfg.State != nil }

// Delete closes a session explicitly, retiring its telemetry and removing
// its stored snapshot (so no replica can resurrect it).
func (m *Manager) Delete(id string) error {
	sh := m.shardFor(id)
	sh.mu.Lock()
	s, ok := sh.sessions[id]
	if ok {
		m.removeLocked(sh, s)
	}
	sh.mu.Unlock()
	if m.cfg.State != nil {
		stored := false
		if !ok {
			_, _, stored, _ = m.cfg.State.Load(id)
		}
		if err := m.cfg.State.Delete(id); err != nil {
			return err
		}
		if !ok && !stored {
			return ErrNotFound
		}
		m.metrics.SessionsClosed.Add(1)
		return nil
	}
	if !ok {
		return ErrNotFound
	}
	m.metrics.SessionsClosed.Add(1)
	return nil
}

// removeLocked unlinks a session from its shard and folds its telemetry
// into the retired aggregate. Callers hold sh.mu.
func (m *Manager) removeLocked(sh *shard, s *Session) {
	delete(sh.sessions, s.id)
	sh.order.Remove(s.lru)
	s.lru = nil
	m.active.Add(-1)
	tel := s.Telemetry()
	m.retiredMu.Lock()
	m.retired.Merge(&tel)
	m.retiredMu.Unlock()
}

// evictLRULocked evicts the shard's least-recently-used session.
func (m *Manager) evictLRULocked(sh *shard) {
	back := sh.order.Back()
	if back == nil {
		return
	}
	m.removeLocked(sh, back.Value.(*Session))
	m.metrics.SessionsEvicted.Add(1)
}

// evictExpiredLocked evicts the shard's sessions idle past the TTL.
func (m *Manager) evictExpiredLocked(sh *shard, now int64) {
	if m.cfg.TTL <= 0 {
		return
	}
	cutoff := now - m.cfg.TTL.Nanoseconds()
	for back := sh.order.Back(); back != nil; back = sh.order.Back() {
		s := back.Value.(*Session)
		if s.lastUsed > cutoff {
			return // LRU order: everything further forward is fresher
		}
		m.removeLocked(sh, s)
		m.metrics.SessionsEvicted.Add(1)
	}
}

// EvictExpired sweeps every shard for TTL-expired sessions and returns how
// many were evicted. cmd/origin-serve runs this on a janitor ticker.
func (m *Manager) EvictExpired() int {
	before := m.metrics.SessionsEvicted.Load()
	now := m.cfg.Now().UnixNano()
	for _, sh := range m.shards {
		sh.mu.Lock()
		m.evictExpiredLocked(sh, now)
		sh.mu.Unlock()
	}
	return int(m.metrics.SessionsEvicted.Load() - before)
}

// Classify routes one classify round for a session through the bounded
// queue: it looks the session up (refreshing its LRU position), enqueues
// the work, and waits for the result or the context deadline. A full queue
// fails fast with ErrSaturated.
func (m *Manager) Classify(ctx context.Context, id string, inputs []SensorInput) (ClassifyResult, error) {
	if m.shutdown.Load() {
		return ClassifyResult{}, ErrShutdown
	}
	s, err := m.Get(id)
	if err != nil {
		return ClassifyResult{}, err
	}
	if every := m.pressureShedEvery.Load(); every > 0 &&
		m.pressureCounter.Add(1)%every == 0 {
		m.metrics.RequestsShed.Add(1)
		return ClassifyResult{}, ErrSaturated
	}
	type outcome struct {
		res ClassifyResult
		err error
	}
	done := make(chan outcome, 1)
	if !m.queue.submit(func() {
		if d := m.pressureDelayNs.Load(); d > 0 {
			time.Sleep(time.Duration(d))
		}
		res, err := s.Classify(inputs)
		m.metrics.RequestsDone.Add(1)
		done <- outcome{res, err}
	}) {
		m.metrics.RequestsShed.Add(1)
		return ClassifyResult{}, ErrSaturated
	}
	m.metrics.RequestsAccepted.Add(1)
	select {
	case out := <-done:
		return out.res, out.err
	case <-ctx.Done():
		// The job may still run (accepted work always completes); only
		// this waiter gives up.
		return ClassifyResult{}, ctx.Err()
	}
}

// Registry exposes the model registry (e.g. for warm-up at startup).
func (m *Manager) Registry() *Registry { return m.reg }

// ActiveSessions returns the number of live sessions.
func (m *Manager) ActiveSessions() int { return int(m.active.Load()) }

// Snapshot returns the serving counters and gauges.
func (m *Manager) Snapshot() MetricsSnapshot {
	return MetricsSnapshot{
		SessionsActive:   int(m.active.Load()),
		SessionsCreated:  m.metrics.SessionsCreated.Load(),
		SessionsEvicted:  m.metrics.SessionsEvicted.Load(),
		SessionsClosed:   m.metrics.SessionsClosed.Load(),
		RequestsAccepted: m.metrics.RequestsAccepted.Load(),
		RequestsShed:     m.metrics.RequestsShed.Load(),
		RequestsDone:     m.metrics.RequestsDone.Load(),
		QueueDepth:       m.queue.depth(),
		WindowsBatched:   m.metrics.WindowsBatched.Load(),
		BatchFlushes:     m.metrics.BatchFlushes.Load(),
		SessionsRestored: m.metrics.SessionsRestored.Load(),
	}
}

// Telemetry returns the aggregated ensemble telemetry: retired sessions
// plus a snapshot of every live one.
func (m *Manager) Telemetry() obs.Telemetry {
	m.retiredMu.Lock()
	agg := m.retired
	m.retiredMu.Unlock()
	for _, sh := range m.shards {
		sh.mu.Lock()
		live := make([]*Session, 0, len(sh.sessions))
		for _, s := range sh.sessions {
			live = append(live, s)
		}
		sh.mu.Unlock()
		for _, s := range live {
			tel := s.Telemetry()
			agg.Merge(&tel)
		}
	}
	return agg
}

// Close stops accepting new sessions and classifications, drains every
// queued job (accepted work completes), and waits for the workers to
// finish — the SIGTERM half of graceful shutdown. The queue must drain
// before the batchers stop: in-flight classify jobs may be waiting on a
// batched score, so the batchers outlive the last worker.
func (m *Manager) Close() {
	if m.shutdown.Swap(true) {
		return
	}
	m.queue.close()
	if m.batchers != nil {
		m.batchers.close()
	}
}

package fleet

import (
	"context"
	"errors"
	"testing"
)

// storePair builds two managers (replica A and replica B) sharing one state
// store — the in-process shape of two serving replicas behind a router.
func storePair(t *testing.T) (*Manager, *Manager, *MemStateStore) {
	t.Helper()
	st := NewMemStateStore()
	reg := tinyRegistry()
	a := NewManager(Config{Registry: reg, Workers: 1, State: st})
	b := NewManager(Config{Registry: reg, Workers: 1, State: st})
	t.Cleanup(func() { a.Close(); b.Close() })
	return a, b, st
}

// roundInputs builds a deterministic classify round for slot i.
func roundInputs(i int) []SensorInput {
	return []SensorInput{
		{Sensor: i % 3, Class: (i * 2) % 5, Confidence: 0.02 + float64(i%7)/50},
		{Sensor: (i + 1) % 3, Class: (i * 3) % 5, Confidence: 0.03 + float64(i%5)/40},
	}
}

// driveRound classifies one round on a manager and persists the snapshot —
// the exact sequence the serving layer performs per round.
func driveRound(t *testing.T, m *Manager, id string, i int) ClassifyResult {
	t.Helper()
	res, err := m.Classify(context.Background(), id, roundInputs(i))
	if err != nil {
		t.Fatalf("round %d: %v", i, err)
	}
	if err := m.PersistSession(id, nil); err != nil {
		t.Fatalf("persist round %d: %v", i, err)
	}
	return res
}

// TestManagerMigration proves the externalized-state contract: rounds served
// on replica A, continued on replica B after a simulated A death, classify
// identically to the same rounds served on a single never-migrated session.
func TestManagerMigration(t *testing.T) {
	a, b, _ := storePair(t)

	// Control: one un-migrated session sees all 12 rounds.
	ctrl, err := a.CreateWithID("ctrl", "MHEALTH", 7, Opts{StaleLimit: 4})
	if err != nil {
		t.Fatal(err)
	}
	var want []ClassifyResult
	for i := 0; i < 12; i++ {
		res, err := ctrl.Classify(roundInputs(i))
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, res)
	}

	// Subject: 6 rounds on A, then A "dies" and B adopts from the store.
	if _, err := a.CreateWithID("subj", "MHEALTH", 7, Opts{StaleLimit: 4}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		got := driveRound(t, a, "subj", i)
		if got.Slot != want[i].Slot || got.Class != want[i].Class {
			t.Fatalf("pre-migration round %d: got %+v want %+v", i, got, want[i])
		}
	}
	s, err := b.Get("subj")
	if err != nil {
		t.Fatalf("B.Get after migration: %v", err)
	}
	if s.Slot() != 6 {
		t.Fatalf("restored session at slot %d, want 6", s.Slot())
	}
	if b.Snapshot().SessionsRestored != 1 {
		t.Fatalf("SessionsRestored = %d, want 1", b.Snapshot().SessionsRestored)
	}
	for i := 6; i < 12; i++ {
		got := driveRound(t, b, "subj", i)
		if got.Slot != want[i].Slot || got.Class != want[i].Class {
			t.Fatalf("post-migration round %d: got %+v want %+v", i, got, want[i])
		}
	}

	// Telemetry travelled: B's view of the session includes A's rounds.
	tel := s.Telemetry()
	if tel.Slots != 12 {
		t.Fatalf("migrated telemetry slots = %d, want 12", tel.Slots)
	}
}

// TestManagerStaleCacheRefresh proves local memory is only a cache: when the
// store advances past a replica's in-memory copy (another replica served
// rounds in between), Get discards the stale copy and restores — without
// double-counting the stale copy's telemetry.
func TestManagerStaleCacheRefresh(t *testing.T) {
	a, b, _ := storePair(t)
	if _, err := a.CreateWithID("x", "MHEALTH", 1, Opts{}); err != nil {
		t.Fatal(err)
	}
	driveRound(t, a, "x", 0)
	driveRound(t, a, "x", 1)

	// B adopts and advances; A's in-memory copy is now stale at slot 2.
	if _, err := b.Get("x"); err != nil {
		t.Fatal(err)
	}
	driveRound(t, b, "x", 2)
	driveRound(t, b, "x", 3)

	s, err := a.Get("x")
	if err != nil {
		t.Fatal(err)
	}
	if s.Slot() != 4 {
		t.Fatalf("A served slot %d after refresh, want 4", s.Slot())
	}
	// Aggregated telemetry must count each round exactly once despite the
	// session having lived (in some version) on both replicas.
	if tel := a.Telemetry(); tel.Slots != 4 {
		t.Fatalf("A aggregated slots = %d, want 4 (stale copy double-counted?)", tel.Slots)
	}
}

// TestManagerEvictionResurrect proves LRU eviction with a store demotes to
// cache eviction: the session's state survives in the store and the next Get
// restores it.
func TestManagerEvictionResurrect(t *testing.T) {
	st := NewMemStateStore()
	m := NewManager(Config{Registry: tinyRegistry(), Shards: 1, MaxSessions: 1, Workers: 1, State: st})
	defer m.Close()
	if _, err := m.CreateWithID("first", "MHEALTH", 1, Opts{}); err != nil {
		t.Fatal(err)
	}
	driveRound(t, m, "first", 0)
	if _, err := m.CreateWithID("second", "MHEALTH", 2, Opts{}); err != nil {
		t.Fatal(err) // evicts "first" from the 1-session shard
	}
	s, err := m.Get("first")
	if err != nil {
		t.Fatalf("Get after eviction: %v", err)
	}
	if s.Slot() != 1 {
		t.Fatalf("resurrected at slot %d, want 1", s.Slot())
	}
}

func TestManagerCreateWithIDConflictsAndDelete(t *testing.T) {
	a, b, store := storePair(t)
	if _, err := a.CreateWithID("dup", "MHEALTH", 1, Opts{}); err != nil {
		t.Fatal(err)
	}
	if _, err := a.CreateWithID("dup", "MHEALTH", 1, Opts{}); !errors.Is(err, ErrExists) {
		t.Fatalf("local duplicate: err = %v, want ErrExists", err)
	}
	// The other replica sees the conflict through the store alone.
	if _, err := b.CreateWithID("dup", "MHEALTH", 1, Opts{}); !errors.Is(err, ErrExists) {
		t.Fatalf("cross-replica duplicate: err = %v, want ErrExists", err)
	}
	if _, err := a.CreateWithID("", "MHEALTH", 1, Opts{}); !errors.Is(err, ErrInvalid) {
		t.Fatalf("empty id: err = %v, want ErrInvalid", err)
	}

	// Delete removes the stored snapshot: no replica can resurrect it.
	if err := a.Delete("dup"); err != nil {
		t.Fatal(err)
	}
	if store.Len() != 0 {
		t.Fatalf("store holds %d sessions after delete, want 0", store.Len())
	}
	if _, err := b.Get("dup"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after delete: err = %v, want ErrNotFound", err)
	}
	// Deleting a session known only to the store (not local memory) works.
	if _, err := a.CreateWithID("remote", "MHEALTH", 1, Opts{}); err != nil {
		t.Fatal(err)
	}
	if err := b.Delete("remote"); err != nil {
		t.Fatalf("store-only delete: %v", err)
	}
	if err := b.Delete("remote"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete: err = %v, want ErrNotFound", err)
	}
}

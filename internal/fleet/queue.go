package fleet

import (
	"sync"
)

// queue is the bounded classification work queue: a fixed worker pool fed
// by a fixed-depth channel. Submitting to a full queue fails immediately
// (the caller sheds the request with 429) instead of queueing unboundedly —
// under overload a serving system must prefer fast rejection over latency
// collapse, and the depth bound makes the worst-case queueing delay a
// configuration constant.
type queue struct {
	jobs chan func()
	wg   sync.WaitGroup

	mu     sync.RWMutex
	closed bool
}

// newQueue starts workers goroutines draining a depth-bounded job channel.
func newQueue(depth, workers int) *queue {
	if depth <= 0 {
		depth = 1
	}
	if workers <= 0 {
		workers = 1
	}
	q := &queue{jobs: make(chan func(), depth)}
	q.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer q.wg.Done()
			for fn := range q.jobs {
				fn()
			}
		}()
	}
	return q
}

// submit enqueues fn if there is room, returning false when the queue is
// saturated or closed.
func (q *queue) submit(fn func()) bool {
	q.mu.RLock()
	defer q.mu.RUnlock()
	if q.closed {
		return false
	}
	select {
	case q.jobs <- fn:
		return true
	default:
		return false
	}
}

// depth returns the number of queued (not yet started) jobs.
func (q *queue) depth() int { return len(q.jobs) }

// close stops accepting work, drains every queued job, and waits for the
// workers to finish — the graceful-shutdown half of the backpressure
// contract: accepted work always completes.
func (q *queue) close() {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		q.wg.Wait()
		return
	}
	q.closed = true
	close(q.jobs)
	q.mu.Unlock()
	q.wg.Wait()
}

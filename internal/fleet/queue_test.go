package fleet

import (
	"sync/atomic"
	"testing"
)

// prop: a saturated queue sheds instead of blocking, and close drains
// every accepted job before returning.
func TestQueueShedAndDrain(t *testing.T) {
	q := newQueue(2, 1)
	started := make(chan struct{})
	release := make(chan struct{})
	var ran atomic.Int64

	// Occupy the single worker, then fill the depth-2 buffer.
	if !q.submit(func() { close(started); <-release; ran.Add(1) }) {
		t.Fatal("first submit rejected")
	}
	<-started
	for i := 0; i < 2; i++ {
		if !q.submit(func() { ran.Add(1) }) {
			t.Fatalf("submit %d rejected before saturation", i)
		}
	}
	if q.depth() != 2 {
		t.Fatalf("depth = %d, want 2", q.depth())
	}
	// Saturated: the next submit must fail fast, not block.
	if q.submit(func() { ran.Add(1) }) {
		t.Fatal("submit accepted past queue depth")
	}

	close(release)
	q.close()
	if got := ran.Load(); got != 3 {
		t.Fatalf("ran %d jobs after close, want 3 (accepted work must complete)", got)
	}
	// After close every submit is rejected and must not panic.
	if q.submit(func() {}) {
		t.Fatal("submit accepted after close")
	}
}

func TestQueueCloseIdempotent(t *testing.T) {
	q := newQueue(1, 2)
	q.close()
	q.close()
}

package fleet_test

import (
	"net"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"origin"
	"origin/internal/comm"
	"origin/internal/fault"
	"origin/internal/fleet"
	"origin/internal/fleet/fleettest"
	"origin/internal/loadgen"
	"origin/internal/serve"
	"origin/internal/synth"
)

// newTestServer stands up a full serving stack (manager + HTTP API) over
// tiny deterministic models.
func newTestServer(t *testing.T, queueDepth, workers int) (*httptest.Server, *fleet.Manager) {
	t.Helper()
	mgr := fleet.NewManager(fleet.Config{
		Registry:   fleettest.NewRegistry(),
		QueueDepth: queueDepth,
		Workers:    workers,
	})
	ts := httptest.NewServer(serve.New(serve.Config{Manager: mgr, RequestTimeout: 30 * time.Second}))
	t.Cleanup(func() {
		ts.Close()
		mgr.Close()
	})
	return ts, mgr
}

// newStreamFront attaches a binary stream front to the same manager and
// returns its address.
func newStreamFront(t *testing.T, mgr *fleet.Manager) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ss := serve.NewStreamServer(serve.StreamConfig{Manager: mgr, RoundTimeout: 30 * time.Second})
	go func() { _ = ss.Serve(ln) }()
	t.Cleanup(ss.Close)
	return ln.Addr().String()
}

// replayConfig fills every field Run would default, so the streams the
// serial replay regenerates are byte-identical to the ones loadgen sent.
func replayConfig(baseURL string, mode loadgen.Mode, users, requests int) loadgen.Config {
	return loadgen.Config{
		BaseURL:           baseURL,
		Profile:           "MHEALTH",
		Users:             users,
		Requests:          requests,
		Seed:              3,
		Mode:              mode,
		SensorsPerRequest: 1,
		VoteFlip:          0.2,
		Traces:            true,
	}
}

// serialReplay drives user i's exact request stream through a fresh facade
// session — no HTTP, no queue, no concurrency.
func serialReplay(t *testing.T, cfg *loadgen.Config, i int) []int {
	t.Helper()
	model, err := fleettest.NewModel(cfg.Profile)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := origin.OpenSession(model, "replay", loadgen.UserID(i), origin.ServeOpts{
		StaleLimit: cfg.StaleLimit, Quorum: cfg.Quorum, Freeze: cfg.Freeze,
	})
	if err != nil {
		t.Fatal(err)
	}
	st := loadgen.NewStream(cfg, synth.MHEALTHProfile(), i)
	classes := make([]int, cfg.Requests)
	for k := 0; k < cfg.Requests; k++ {
		req := st.Next(k)
		inputs, err := serve.Inputs(&req)
		if err != nil {
			t.Fatalf("user %d round %d: %v", i, k, err)
		}
		res, err := sess.Classify(inputs)
		if err != nil {
			t.Fatalf("user %d round %d: %v", i, k, err)
		}
		classes[k] = res.Class
	}
	return classes
}

// serialStreamReplay rebuilds user i's stream-mode classification sequence
// without a network: regenerate the exact frame bytes the live client sent
// (FrameSource is deterministic), decode them through the wire codec, run
// them through the same StreamAssembler the server uses, and classify each
// completed round on a fresh facade session. Byte-identical inputs on both
// paths — the quantisation loss happens before the wire, never differently
// on either side of it.
func serialStreamReplay(t *testing.T, cfg *loadgen.Config, i int) []int {
	t.Helper()
	model, err := fleettest.NewModel(cfg.Profile)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := origin.OpenSession(model, "replay", loadgen.UserID(i), origin.ServeOpts{
		StaleLimit: cfg.StaleLimit, Quorum: cfg.Quorum, Freeze: cfg.Freeze,
	})
	if err != nil {
		t.Fatal(err)
	}
	fs := loadgen.NewFrameSource(cfg, synth.MHEALTHProfile(), i)
	asm := serve.NewStreamAssembler(model.Sensors(), model.Window)
	var classes []int
	for k := 0; k < cfg.Requests; k++ {
		frames, err := fs.Next(k)
		if err != nil {
			t.Fatalf("user %d round %d: %v", i, k, err)
		}
		for _, ef := range frames {
			f, err := comm.DecodeFrameBytes(ef.Bytes)
			if err != nil {
				t.Fatalf("user %d round %d: %v", i, k, err)
			}
			imu, err := comm.DecodeIMU(f.Payload)
			if err != nil {
				t.Fatalf("user %d round %d: %v", i, k, err)
			}
			end, err := asm.Ingest(imu)
			if err != nil {
				t.Fatalf("user %d round %d: %v", i, k, err)
			}
			if !end {
				continue
			}
			res, err := sess.Classify(asm.TakeRound())
			if err != nil {
				t.Fatalf("user %d round %d: %v", i, k, err)
			}
			classes = append(classes, res.Class)
		}
	}
	return classes
}

// prop (ISSUE acceptance): a concurrent stream-mode loadgen run yields
// per-session classification sequences bit-identical to serially replaying
// each session's frame stream through the assembler + facade. Runs in CI
// under -race via the serve verification target.
func TestStreamLoadgenMatchesSerialReplay(t *testing.T) {
	ts, mgr := newTestServer(t, 64, 4)
	cfg := replayConfig(ts.URL, loadgen.ModeStream, 4, 24)
	cfg.StreamAddr = newStreamFront(t, mgr)
	cfg.StreamHop = loadgen.DefaultStreamHop // Run defaults this on its own copy; the replay needs it too
	rep, err := loadgen.Run(cfg)
	if err != nil {
		t.Fatalf("loadgen: %v", err)
	}
	if len(rep.Sessions) != cfg.Users {
		t.Fatalf("traced %d sessions, want %d", len(rep.Sessions), cfg.Users)
	}
	for i, tr := range rep.Sessions {
		want := serialStreamReplay(t, &cfg, i)
		if !reflect.DeepEqual(tr.Classes, want) {
			t.Errorf("user %d: stream sequence diverged from serial replay:\n got %v\nwant %v",
				i, tr.Classes, want)
		}
	}
	if rep.UplinkBytes <= 0 || rep.UplinkBytesPerClassification <= 0 {
		t.Fatalf("stream run recorded no uplink bytes: %+v", rep)
	}
}

// prop (ISSUE acceptance, headline): with seeded connection chaos killing
// every stream connection mid-round, the reconnect/resume protocol keeps
// every session's classification sequence byte-identical to the fault-free
// serial replay — no lost rounds, no double classifications. Runs in CI
// under -race via the chaos verification target.
func TestStreamChaosLoadgenMatchesSerialReplay(t *testing.T) {
	ts, mgr := newTestServer(t, 64, 4)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	chaos, err := fault.NewChaosListener(ln, fault.ConnChaos{
		Seed:     21,
		KillRate: 1, KillMinBytes: 2048, KillMaxBytes: 8192,
		PartialWriteRate: 0.25,
	})
	if err != nil {
		t.Fatal(err)
	}
	ss := serve.NewStreamServer(serve.StreamConfig{Manager: mgr, RoundTimeout: 30 * time.Second})
	go func() { _ = ss.Serve(chaos) }()
	t.Cleanup(ss.Close)

	cfg := replayConfig(ts.URL, loadgen.ModeStream, 4, 24)
	cfg.StreamAddr = ln.Addr().String()
	cfg.StreamHop = loadgen.DefaultStreamHop
	cfg.ReconnectMax = 16 // every connection dies; give redials headroom
	rep, err := loadgen.Run(cfg)
	if err != nil {
		t.Fatalf("loadgen under chaos: %v", err)
	}
	stats := chaos.Stats()
	t.Logf("chaos: %+v; reconnects=%d resumeAttempts=%d availability=%.4f",
		stats, rep.Reconnects, rep.ResumeAttempts, rep.Availability)
	if stats.Kills == 0 {
		t.Fatal("chaos injected no kills — the run proves nothing")
	}
	if rep.Reconnects == 0 || rep.ResumeAttempts == 0 {
		t.Fatalf("no resumes exercised: %+v", rep)
	}
	if rep.ResumeMisses != 0 || rep.DoubleClassifies != 0 {
		t.Fatalf("resume protocol violated: misses=%d doubleClassifies=%d",
			rep.ResumeMisses, rep.DoubleClassifies)
	}
	if rep.OK != cfg.Users*cfg.Requests || rep.Errors != 0 {
		t.Fatalf("rounds lost under chaos: %+v", rep)
	}
	for i, tr := range rep.Sessions {
		want := serialStreamReplay(t, &cfg, i)
		if !reflect.DeepEqual(tr.Classes, want) {
			t.Errorf("user %d: chaos sequence diverged from fault-free serial replay:\n got %v\nwant %v",
				i, tr.Classes, want)
		}
	}
}

// prop (ISSUE acceptance): for a fixed seed set, a concurrent loadgen run
// over N sessions yields per-session classification sequences identical to
// serially replaying each session's stream through the facade.
func TestLoadgenMatchesSerialReplay(t *testing.T) {
	cases := []struct {
		mode            loadgen.Mode
		users, requests int
	}{
		{loadgen.ModeVotes, 6, 50},
		{loadgen.ModeWindows, 3, 12}, // windows pay server-side inference
	}
	for _, tc := range cases {
		t.Run(string(tc.mode), func(t *testing.T) {
			ts, _ := newTestServer(t, 64, 4)
			cfg := replayConfig(ts.URL, tc.mode, tc.users, tc.requests)
			rep, err := loadgen.Run(cfg)
			if err != nil {
				t.Fatalf("loadgen: %v", err)
			}
			if len(rep.Sessions) != tc.users {
				t.Fatalf("traced %d sessions, want %d", len(rep.Sessions), tc.users)
			}
			for i, tr := range rep.Sessions {
				if tr.User != loadgen.UserID(i) {
					t.Fatalf("session %d traces user %d, want %d", i, tr.User, loadgen.UserID(i))
				}
				want := serialReplay(t, &cfg, i)
				if !reflect.DeepEqual(tr.Classes, want) {
					t.Errorf("user %d: served sequence diverged from serial facade replay:\n got %v\nwant %v",
						i, tr.Classes, want)
				}
			}
		})
	}
}

// prop: two identical loadgen runs against fresh servers produce identical
// traces — serving is deterministic end to end, not merely self-consistent.
func TestLoadgenRunRepeatable(t *testing.T) {
	run := func() []loadgen.SessionTrace {
		ts, _ := newTestServer(t, 64, 4)
		cfg := replayConfig(ts.URL, loadgen.ModeVotes, 4, 40)
		rep, err := loadgen.Run(cfg)
		if err != nil {
			t.Fatalf("loadgen: %v", err)
		}
		return rep.Sessions
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("trace counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if !reflect.DeepEqual(a[i].Classes, b[i].Classes) {
			t.Errorf("user %d traces differ across runs:\n run1 %v\n run2 %v", i, a[i].Classes, b[i].Classes)
		}
	}
}

// prop: determinism survives shedding — with a starved queue the loadgen
// retries shed rounds, so sequences still match the serial replay.
func TestLoadgenDeterministicUnderShedding(t *testing.T) {
	ts, mgr := newTestServer(t, 1, 1) // depth-1 queue, single worker
	cfg := replayConfig(ts.URL, loadgen.ModeVotes, 6, 30)
	rep, err := loadgen.Run(cfg)
	if err != nil {
		t.Fatalf("loadgen: %v", err)
	}
	for i, tr := range rep.Sessions {
		want := serialReplay(t, &cfg, i)
		if !reflect.DeepEqual(tr.Classes, want) {
			t.Errorf("user %d diverged under shedding:\n got %v\nwant %v", i, tr.Classes, want)
		}
	}
	snap := mgr.Snapshot()
	t.Logf("shed=%d accepted=%d (sheds are load-dependent; correctness is not)",
		snap.RequestsShed, snap.RequestsAccepted)
}

package fleet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
)

// Externalized session state. A single origin-serve process keeps session
// state in memory; horizontal scale-out moves the authoritative copy into a
// StateStore shared by every replica, with replica memory demoted to a
// validated cache. The serving layer writes one combined snapshot per
// classified round (core state plus the stream front's opaque attachment),
// so whatever a replica held when it died is reconstructible by the next
// owner from the store alone.
//
// Versioning discipline: a snapshot's version is the session slot it was
// taken at (rounds classified so far). Writes carry their version and a
// store accepts a write only when it is at least as new as what it holds —
// a delayed write from a session's previous owner, racing the new owner
// after a migration, is dropped as stale. Equal-version overwrites are
// accepted: the session state machine is deterministic, so two replicas
// that classified the same round from the same inputs wrote identical
// bytes, and the overwrite is a no-op by content.

// StateStore is the shared, authoritative session-state store. All methods
// must be safe for concurrent use.
type StateStore interface {
	// Load returns the newest snapshot for a session id. ok is false when
	// the store holds nothing for the id.
	Load(id string) (blob []byte, ver int64, ok bool, err error)
	// Put stores blob as the session's snapshot at version ver. Writes
	// older than the stored version are silently dropped (see the
	// versioning discipline above).
	Put(id string, ver int64, blob []byte) error
	// Delete removes the session's snapshot (no-op when absent).
	Delete(id string) error
}

// MemStateStore is the in-process StateStore an in-process replica cluster
// shares. The zero value is not usable; call NewMemStateStore.
type MemStateStore struct {
	mu sync.Mutex
	m  map[string]memStateEntry
}

type memStateEntry struct {
	ver  int64
	blob []byte
}

// NewMemStateStore returns an empty in-memory state store.
func NewMemStateStore() *MemStateStore {
	return &MemStateStore{m: map[string]memStateEntry{}}
}

// Load implements StateStore.
func (s *MemStateStore) Load(id string) ([]byte, int64, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.m[id]
	if !ok {
		return nil, 0, false, nil
	}
	return append([]byte(nil), e.blob...), e.ver, true, nil
}

// Put implements StateStore.
func (s *MemStateStore) Put(id string, ver int64, blob []byte) error {
	if ver < 0 {
		return fmt.Errorf("fleet: negative state version %d", ver)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.m[id]; ok && ver < e.ver {
		return nil // stale write from a previous owner
	}
	s.m[id] = memStateEntry{ver: ver, blob: append([]byte(nil), blob...)}
	return nil
}

// Delete implements StateStore.
func (s *MemStateStore) Delete(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.m, id)
	return nil
}

// Len reports how many sessions the store holds (tests and gauges).
func (s *MemStateStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.m)
}

// FileStateStore is a StateStore backed by a directory of one file per
// session — the multi-process quickstart transport (N origin-serve replicas
// pointed at one -state-dir behind an origin-router). Each file holds an
// 8-byte little-endian version followed by the snapshot blob; writes go to
// a temp file and rename into place, so readers never observe a torn
// snapshot. The version check is read-then-rename without a directory lock:
// with the router enforcing a single owner per session, concurrent writers
// for one id only occur transiently around a migration, where both carry
// identical or ordered versions.
type FileStateStore struct {
	dir string
	mu  sync.Mutex // serialises same-process writers (cross-process relies on rename atomicity)
}

// NewFileStateStore opens (creating if needed) a directory-backed store.
func NewFileStateStore(dir string) (*FileStateStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("fleet: state dir: %w", err)
	}
	return &FileStateStore{dir: dir}, nil
}

// path maps a session id onto a filename, hex-escaping anything outside the
// safe character set so a hostile id cannot traverse out of the directory.
func (s *FileStateStore) path(id string) string {
	safe := true
	for i := 0; i < len(id); i++ {
		c := id[i]
		if !(c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '-' || c == '_') {
			safe = false
			break
		}
	}
	name := id
	if !safe || id == "" {
		name = fmt.Sprintf("x%x", id)
	}
	return filepath.Join(s.dir, name+".session")
}

// Load implements StateStore.
func (s *FileStateStore) Load(id string) ([]byte, int64, bool, error) {
	data, err := os.ReadFile(s.path(id))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, 0, false, nil
	}
	if err != nil {
		return nil, 0, false, fmt.Errorf("fleet: state load %q: %w", id, err)
	}
	if len(data) < 8 {
		return nil, 0, false, fmt.Errorf("fleet: state file for %q truncated", id)
	}
	ver := int64(binary.LittleEndian.Uint64(data))
	if ver < 0 {
		return nil, 0, false, fmt.Errorf("fleet: state file for %q has negative version", id)
	}
	return data[8:], ver, true, nil
}

// Put implements StateStore.
func (s *FileStateStore) Put(id string, ver int64, blob []byte) error {
	if ver < 0 {
		return fmt.Errorf("fleet: negative state version %d", ver)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, cur, ok, err := s.Load(id); err != nil {
		return err
	} else if ok && ver < cur {
		return nil // stale write from a previous owner
	}
	data := binary.LittleEndian.AppendUint64(make([]byte, 0, 8+len(blob)), uint64(ver))
	data = append(data, blob...)
	tmp, err := os.CreateTemp(s.dir, ".put-*")
	if err != nil {
		return fmt.Errorf("fleet: state put %q: %w", id, err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("fleet: state put %q: %w", id, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("fleet: state put %q: %w", id, err)
	}
	if err := os.Rename(tmp.Name(), s.path(id)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("fleet: state put %q: %w", id, err)
	}
	return nil
}

// Delete implements StateStore.
func (s *FileStateStore) Delete(id string) error {
	err := os.Remove(s.path(id))
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("fleet: state delete %q: %w", id, err)
	}
	return nil
}

package fleet

import (
	"container/list"
	"errors"
	"fmt"
	"sync"

	"origin/internal/ensemble"
	"origin/internal/host"
	"origin/internal/obs"
	"origin/internal/sensor"
	"origin/internal/synth"
	"origin/internal/tensor"
)

// ErrInvalid marks a malformed classify request (unknown sensor, class out
// of range, wrong window geometry). The HTTP layer maps it to 400.
var ErrInvalid = errors.New("invalid request")

// Opts are the per-session knobs a client may set at session creation.
type Opts struct {
	// StaleLimit, if positive, drops recalled votes older than this many
	// slots (0 keeps them indefinitely — the paper's aggressive recall).
	StaleLimit int
	// Quorum, if positive, is the minimum number of valid votes required
	// before the ensemble classifies; with fewer the session abstains (-1).
	Quorum int
	// Freeze disables online confidence-matrix adaptation (the Fig. 6
	// "static" ablation); the default is the paper's adaptive behaviour.
	Freeze bool
}

// Validate checks the options against a model's geometry.
func (o Opts) Validate(m *Model) error {
	if o.StaleLimit < 0 {
		return fmt.Errorf("%w: negative stale limit %d", ErrInvalid, o.StaleLimit)
	}
	if o.Quorum < 0 || o.Quorum > m.Sensors() {
		return fmt.Errorf("%w: quorum %d outside [0,%d]", ErrInvalid, o.Quorum, m.Sensors())
	}
	return nil
}

// SensorInput is one sensor's contribution to a classify request: either a
// raw IMU window (classified server-side on the model's nets) or a
// precomputed softmax vote (class + softmax-variance confidence), matching
// the two payloads a real deployment's uplink could carry.
type SensorInput struct {
	// Sensor is the voter index (0..model.Sensors()-1).
	Sensor int
	// Window, when non-nil, is the (synth.Channels × model.Window) IMU
	// window to classify. When nil, Class/Confidence are used directly.
	Window *tensor.Tensor
	// Class is the precomputed vote's activity class.
	Class int
	// Confidence is the precomputed vote's softmax-variance score.
	Confidence float64
}

// VoteInfo echoes one fresh vote that entered a classify round.
type VoteInfo struct {
	Sensor     int     `json:"sensor"`
	Class      int     `json:"class"`
	Confidence float64 `json:"confidence"`
}

// ClassifyResult is one serving decision.
type ClassifyResult struct {
	// Slot is the session-local round index (one per classify call).
	Slot int `json:"slot"`
	// Class is the fused classification (-1 = abstained).
	Class int `json:"class"`
	// Activity is the class label ("abstain" for -1).
	Activity string `json:"activity"`
	// Votes echoes the fresh votes, in request order, after server-side
	// inference resolved any windows.
	Votes []VoteInfo `json:"votes,omitempty"`
}

// SessionInfo is a read-only session snapshot.
type SessionInfo struct {
	ID      string `json:"id"`
	User    int64  `json:"user"`
	Profile string `json:"profile"`
	// Slots counts classify rounds served; Received the sensor results
	// ingested; Adapts the online confidence-matrix updates applied.
	Slots    int `json:"slots"`
	Received int `json:"received"`
	Adapts   int `json:"adapts"`
}

// Session holds one wearer's host-side serving state: the recall store and
// anticipation (via host.Device) and a private clone of the confidence
// matrix that adapts online to this user. A mutex serialises requests, so
// a session's classification sequence depends only on its own request
// order — concurrency across sessions cannot perturb it.
type Session struct {
	id    string
	user  int64
	model *Model
	opts  Opts

	// score resolves raw windows to votes. Standalone sessions use the
	// direct (unbatched) scorer; the Manager swaps in its micro-batching
	// scorer at creation. Both are bit-identical per window, so the choice
	// is invisible in results.
	score scorer

	mu   sync.Mutex
	dev  *host.Device
	slot int
	tel  *obs.Telemetry

	// lru is maintained by the Manager's shard (guarded by the shard lock,
	// not s.mu); lastUsed is the shard's eviction clock for this session.
	lru      *list.Element
	lastUsed int64 // unix nanos, guarded by the owning shard's lock
}

// NewSession builds a standalone session over a model. The Manager calls
// this internally; it is exported (via the facade) so single-user callers
// and replay tests can drive the identical state machine without a server.
func NewSession(id string, user int64, m *Model, o Opts) (*Session, error) {
	if err := o.Validate(m); err != nil {
		return nil, err
	}
	tel := obs.NewTelemetry(0)
	dev := host.New(host.Config{
		Sensors:    m.Sensors(),
		Classes:    m.Classes(),
		Recall:     true,
		Agg:        host.AggWeighted,
		Matrix:     m.NewMatrix(),
		Adaptive:   !o.Freeze,
		StaleLimit: o.StaleLimit,
		Quorum:     o.Quorum,
	})
	dev.Attach(tel)
	return &Session{id: id, user: user, model: m, opts: o, score: directScorer{m}, dev: dev, tel: tel}, nil
}

// newSessionFromState rebuilds a session from a decoded snapshot so a
// replica can adopt a session another replica started. The snapshot's
// profile must match the model it is installed onto; every device field is
// re-validated against the live geometry by host.Device.Restore.
func newSessionFromState(st SessionState, m *Model) (*Session, error) {
	if st.Profile != m.Name {
		return nil, fmt.Errorf("%w: snapshot for profile %q cannot restore onto %q", ErrInvalid, st.Profile, m.Name)
	}
	s, err := NewSession(st.ID, st.User, m, st.Opts)
	if err != nil {
		return nil, err
	}
	if err := s.dev.Restore(st.Device); err != nil {
		return nil, err
	}
	if err := s.dev.Matrix().CopyFrom(st.Matrix); err != nil {
		return nil, err
	}
	if st.Slot < 0 {
		return nil, fmt.Errorf("%w: negative snapshot slot", ErrInvalid)
	}
	s.slot = st.Slot
	s.tel.Slots = st.Counters.Slots
	s.tel.FreshVotes = st.Counters.FreshVotes
	s.tel.RecallVotes = st.Counters.RecallVotes
	s.tel.AdaptationUpdates = st.Counters.AdaptationUpdates
	s.tel.Faults.QuorumAbstentions = st.Counters.QuorumAbstentions
	return s, nil
}

// State snapshots the session under its lock. The attachment is the stream
// front's opaque lineage section (nil for HTTP-only sessions); fleet stores
// it verbatim. The returned snapshot shares nothing with live session state.
func (s *Session) State(attachment []byte) SessionState {
	s.mu.Lock()
	defer s.mu.Unlock()
	tot := s.tel.Totals()
	return SessionState{
		ID:      s.id,
		User:    s.user,
		Profile: s.model.Name,
		Opts:    s.opts,
		Slot:    s.slot,
		Device:  s.dev.State(),
		Matrix:  s.dev.Matrix().Clone(),
		Counters: SessionCounters{
			Slots:             tot.Slots,
			FreshVotes:        tot.FreshVotes,
			RecallVotes:       tot.RecallVotes,
			AdaptationUpdates: tot.AdaptationUpdates,
			QuorumAbstentions: tot.Faults.QuorumAbstentions,
		},
		Attachment: append([]byte(nil), attachment...),
	}
}

// Slot returns the number of classify rounds served so far — the version a
// snapshot of this session would carry.
func (s *Session) Slot() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.slot
}

// ID returns the session id.
func (s *Session) ID() string { return s.id }

// User returns the subject id the session was opened for.
func (s *Session) User() int64 { return s.user }

// Model returns the shared model the session classifies against.
func (s *Session) Model() *Model { return s.model }

// validate checks one classify input against the model geometry.
func (s *Session) validate(in SensorInput) error {
	m := s.model
	if in.Sensor < 0 || in.Sensor >= m.Sensors() {
		return fmt.Errorf("%w: sensor %d outside [0,%d)", ErrInvalid, in.Sensor, m.Sensors())
	}
	if in.Window != nil {
		if in.Window.Dims() != 2 || in.Window.Dim(0) != synth.Channels || in.Window.Dim(1) != m.Window {
			return fmt.Errorf("%w: window shape %v, want (%d,%d)", ErrInvalid, in.Window.Shape(), synth.Channels, m.Window)
		}
		return nil
	}
	if in.Class < 0 || in.Class >= m.Classes() {
		return fmt.Errorf("%w: class %d outside [0,%d)", ErrInvalid, in.Class, m.Classes())
	}
	if in.Confidence < 0 {
		return fmt.Errorf("%w: negative confidence %v", ErrInvalid, in.Confidence)
	}
	return nil
}

// Classify runs one serving round: every input becomes a fresh vote
// (windows are classified on pooled net clones first), sensors that sent
// nothing vote from the recall store, and the confidence-weighted ensemble
// fuses them. The round follows the simulator's per-slot order exactly —
// observe results, classify, move the anticipation to the fused opinion,
// then adapt the matrix when fresh votes arrived — so a serially replayed
// session reproduces a simulated host bit-for-bit.
//
// An empty input slice is a valid round: the session classifies from
// recall alone and performs no adaptation (nothing fresh arrived).
func (s *Session) Classify(inputs []SensorInput) (ClassifyResult, error) {
	for i, in := range inputs {
		if err := s.validate(in); err != nil {
			return ClassifyResult{}, err
		}
		// One vote per sensor per round: a duplicate would double-count one
		// location in the ensemble fusion and corrupt its recall entry. The
		// scan is quadratic but rounds carry at most a handful of sensors.
		for _, prev := range inputs[:i] {
			if prev.Sensor == in.Sensor {
				return ClassifyResult{}, fmt.Errorf("%w: duplicate sensor %d in round", ErrInvalid, in.Sensor)
			}
		}
	}
	// Score raw windows before taking the session lock: scoring is a pure
	// function of (model, sensor, window), so it neither reads nor writes
	// session state, and resolving it first means the lock is never held
	// across a (possibly micro-batched) inference wait.
	var sensors []int
	var windows []*tensor.Tensor
	for _, in := range inputs {
		if in.Window != nil {
			sensors = append(sensors, in.Sensor)
			windows = append(windows, in.Window)
		}
	}
	var scores []windowScore
	if len(windows) > 0 {
		scores = s.score.scoreWindows(sensors, windows)
	}

	s.mu.Lock()
	defer s.mu.Unlock()

	slot := s.slot
	votes := make([]VoteInfo, 0, len(inputs))
	scored := 0
	for _, in := range inputs {
		class, conf := in.Class, in.Confidence
		if in.Window != nil {
			class, conf = scores[scored].class, scores[scored].conf
			scored++
		}
		s.dev.Observe(&sensor.Result{Sensor: in.Sensor, Class: class, Confidence: conf, Slot: slot})
		votes = append(votes, VoteInfo{Sensor: in.Sensor, Class: class, Confidence: conf})
	}
	final := s.dev.Classify(slot)
	s.dev.NoteFinal(final)
	if len(inputs) > 0 {
		s.dev.Adapt(slot, final)
	}
	s.slot++
	s.tel.Slots++ // one serving round = one telemetry slot
	return ClassifyResult{
		Slot:     slot,
		Class:    final,
		Activity: s.model.Activity(final),
		Votes:    votes,
	}, nil
}

// Info returns a snapshot of the session's counters.
func (s *Session) Info() SessionInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	return SessionInfo{
		ID:       s.id,
		User:     s.user,
		Profile:  s.model.Name,
		Slots:    s.slot,
		Received: s.dev.Received(),
		Adapts:   s.dev.AdaptsApplied(),
	}
}

// Matrix returns the session's (adapting) confidence matrix. Callers must
// treat it as read-only; it is owned by the session.
func (s *Session) Matrix() *ensemble.Matrix {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dev.Matrix()
}

// Telemetry returns a copy of the session's accumulated vote/adaptation
// telemetry totals.
func (s *Session) Telemetry() obs.Telemetry {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tel.Totals()
}

// Personalization: the paper's Fig. 6 scenario — a previously-unseen user
// (different gait, one poorly-mounted sensor) wears the system under noisy
// sensing, and the adaptive confidence matrix re-learns whom to trust from
// the classification stream alone.
//
//	go run ./examples/personalization
package main

import (
	"fmt"

	"origin"
	"origin/internal/experiments"
)

func main() {
	fmt.Println("Origin personalization example — adaptive confidence matrix (Fig. 6)")
	sys := origin.BuildSystem("MHEALTH")

	// A shortened version of the paper's 1000-iteration protocol.
	res := origin.RunFig6(sys, experiments.Fig6Config{
		Iterations: 300,
		UserIDs:    []int64{11, 12, 13},
		SNRdB:      20,
	})
	fmt.Println(res)

	// The isolated mechanism: same unseen noisy user with the matrix frozen.
	fmt.Println(origin.RunAblationAdaptive(sys, 12000, 7))
	fmt.Println("The adaptive row should sit above the frozen row: consensus updates")
	fmt.Println("discover the badly-mounted sensor and shift ensemble weight away from it.")
}

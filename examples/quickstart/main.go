// Quickstart: build the trained 3-sensor system, run RR12-Origin on
// harvested energy, and compare it with the fully-powered energy-aware
// baseline — the paper's headline experiment end to end.
//
//	go run ./examples/quickstart
//
// The first run trains the per-sensor networks (a minute or two); later
// runs load them from the model cache.
package main

import (
	"fmt"

	"origin"
)

func main() {
	fmt.Println("Origin quickstart — DATE 2021 reproduction")
	fmt.Println("building MHEALTH system (trains networks on first run)...")
	sys := origin.BuildSystem("MHEALTH")
	fmt.Printf("  trace mean %.1f µW, Baseline-2 budget %d MACs\n\n", sys.TraceMeanW*1e6, sys.B2BudgetMACs)

	const slots = 6000 // 25 simulated minutes of activity
	fmt.Printf("running RR12-Origin on harvested energy (%d slots)...\n", slots)
	res := origin.RunPolicy(sys, origin.RunOpts{
		Width: 12, Kind: origin.PolicyOrigin, Slots: slots, Seed: 3,
	})
	all, atLeast, failed := res.Completion.Rates()
	fmt.Printf("  accuracy   %.2f%%\n", 100*res.RoundAccuracy())
	fmt.Printf("  completion all=%.1f%% ≥1=%.1f%% failed=%.1f%%\n\n", 100*all, 100*atLeast, 100*failed)

	fmt.Println("running the fully-powered Baseline-2 (majority voting)...")
	base := origin.RunBaseline(sys, "B2", slots, 3)
	fmt.Printf("  accuracy   %.2f%%\n\n", 100*base.RoundAccuracy())

	diff := 100 * (res.RoundAccuracy() - base.RoundAccuracy())
	fmt.Printf("Origin (harvested energy) vs Baseline-2 (fully powered): %+.2f points\n", diff)
	fmt.Println("(the paper reports +2.72 on MHEALTH — Origin wins despite running on scavenged power)")

	fmt.Println("\nper-activity accuracy (Origin / Baseline-2):")
	op, bp := res.RoundPerClass(), base.RoundPerClass()
	for c, act := range sys.Profile.Activities {
		fmt.Printf("  %-10s %6.2f%% / %6.2f%%\n", act, 100*op[c], 100*bp[c])
	}
}

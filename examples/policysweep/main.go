// Policysweep: the paper's Fig. 5 experiment in miniature — sweep the
// extended-round-robin width across AAS, AASR and Origin, and place the
// fully-powered baselines next to them.
//
//	go run ./examples/policysweep
package main

import (
	"fmt"

	"origin"
)

func main() {
	fmt.Println("Origin policy sweep example — Fig. 5 in miniature")
	cfg := origin.SweepConfig{Slots: 4000, Seeds: []int64{3, 17}}

	for _, profile := range []string{"MHEALTH", "PAMAP2"} {
		sys := origin.BuildSystem(profile)
		fmt.Println(origin.RunFig5(sys, cfg))
	}

	fmt.Println("Reading the tables: accuracy rises with the round-robin width")
	fmt.Println("(more harvesting per inference → more completions), Origin tops AASR")
	fmt.Println("tops AAS at every width, and RR12-Origin — on harvested energy —")
	fmt.Println("beats the fully-powered Baseline-2.")
}

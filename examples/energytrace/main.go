// Energytrace: inspect the calibrated office-WiFi harvesting trace that
// powers every experiment, export it to CSV (drop in a real recording with
// the same format to replace it), and show how inference completion scales
// with harvested power.
//
//	go run ./examples/energytrace
package main

import (
	"fmt"
	"os"

	"origin"
	"origin/internal/experiments"
)

func main() {
	fmt.Println("Origin energy-trace example")

	tr := origin.GenerateTrace(600, 77) // 10 minutes of office WiFi harvest
	fmt.Printf("trace: %d samples at %.0f ms, mean %.1f µW, peak %.1f µW\n",
		tr.Len(), tr.Tick*1000, tr.Mean()*1e6, tr.Peak()*1e6)

	// Quiet-time fraction: how intermittent is the supply?
	quiet := 0
	for _, p := range tr.Power {
		if p < 0.5*tr.Mean() {
			quiet++
		}
	}
	fmt.Printf("quiet ticks (<50%% of mean): %.1f%% — the intermittency Origin schedules around\n",
		100*float64(quiet)/float64(tr.Len()))

	const out = "wifi-office-trace.csv"
	if err := tr.SaveCSVFile(out); err != nil {
		fmt.Fprintf(os.Stderr, "save trace: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("exported to %s (replace with a real recording to re-run all experiments on it)\n\n", out)

	// Completion vs supply: replay Fig. 1's naive scheduling while scaling
	// the harvested power, using the trained Baseline-1 nets.
	sys := origin.BuildSystem("MHEALTH")
	fmt.Println("naive-scheduling completion vs harvested power (Baseline-1 nets):")
	for _, seed := range []int64{1, 2} {
		r := experiments.RunFig1(sys, experiments.Fig1Config{Slots: 2000, Seed: seed})
		fmt.Printf("  seed %d: ≥1 sensor completes %.2f%% of rounds, RR3 completes %.2f%%\n",
			seed, 100*r.NaiveAtLeastOne, 100*r.RR3Succeeded)
	}
	fmt.Println("(the paper's Fig. 1: ≈10% and 28% — scheduling, not silicon, is the bottleneck)")
}

// Failover: the paper's Discussion argues that a distributed ensemble
// "poses minimum risk if one of the sensors fails", unlike "a larger and
// unpruned centralized DNN that is more failure-prone and power hungry".
// This example kills the strongest sensor (the left ankle) and watches both
// designs cope.
//
//	go run ./examples/failover
package main

import (
	"fmt"

	"origin"
)

func main() {
	fmt.Println("Origin failover example — sensor failure vs centralized fusion")
	sys := origin.BuildSystem("MHEALTH")

	fmt.Println("training/loading the centralized 18-channel fusion DNN...")
	r := origin.RunCentralized(sys, 6000, 7)
	fmt.Println(r)

	// The same failure seen per policy: Origin's AAS routes around the dead
	// node (energy fallback), the stale-vote limit ages its recalls out, and
	// the confidence matrix re-weights the survivors.
	for _, dead := range []int{0, int(1) + 1} { // none, then ankle (1-based)
		label := "all sensors healthy"
		if dead > 0 {
			label = "left ankle dead"
		}
		res := origin.RunPolicy(sys, origin.RunOpts{
			Width: 12, Kind: origin.PolicyOrigin, Slots: 6000, Seed: 7,
			DeadSensor: dead,
		})
		fmt.Printf("RR12 Origin, %-20s accuracy %.2f%%\n", label+":", 100*res.RoundAccuracy())
	}
}

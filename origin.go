// Package origin is a from-scratch reproduction of "Origin: Enabling
// On-Device Intelligence for Human Activity Recognition Using Energy
// Harvesting Wireless Sensor Networks" (Mishra, Sampson, Kandemir,
// Narayanan — DATE 2021).
//
// Origin coordinates a body-area network of three energy-harvesting IMU
// sensor nodes (chest, left ankle, right wrist), each running its own small
// per-location DNN classifier, through four mechanisms:
//
//   - extended round-robin scheduling (ER-r) that inserts harvesting slots
//     between inferences,
//   - activity-aware scheduling (AAS) that activates the sensor best ranked
//     for the anticipated activity, with an energy fallback to the next
//     best,
//   - host-side recall of each sensor's most recent classification so every
//     sensor participates in the ensemble without being activated (AASR),
//   - an adaptive confidence matrix (average softmax-output variance per
//     sensor and class) used as weights for majority voting and updated
//     online to personalise to the wearer.
//
// This package is the public facade. Everything underneath — a tensor/DNN
// stack with training and pruning, a synthetic multi-subject IMU generator,
// a WiFi harvesting-trace model, a capacitor store, a non-volatile
// intermittent processor, the scheduling policies, the ensemble, the
// discrete-time simulator, and one driver per paper table/figure — lives in
// internal/ packages and is re-exported here by alias.
//
// Quick start:
//
//	sys := origin.BuildSystem("MHEALTH")
//	res := origin.RunPolicy(sys, origin.RunOpts{Width: 12, Kind: origin.PolicyOrigin})
//	fmt.Printf("top-1 accuracy: %.2f%%\n", 100*res.RoundAccuracy())
//
// Every run is deterministic for fixed seeds; see DESIGN.md for the system
// inventory and EXPERIMENTS.md for measured-vs-paper numbers.
package origin

import (
	"origin/internal/energy"
	"origin/internal/experiments"
	"origin/internal/fleet"
	"origin/internal/sim"
	"origin/internal/synth"
)

// System is a fully-trained deployment for one dataset profile: Baseline-1
// and Baseline-2 nets per location plus the derived confidence matrix,
// accuracy table and AAS rank table.
type System = experiments.System

// RunOpts bundles the knobs of one energy-harvesting policy run.
type RunOpts = experiments.RunOpts

// PolicyKind selects the system variant (ER-r, AAS, AASR, Origin).
type PolicyKind = experiments.PolicyKind

// The system variants the paper's Figs. 4–5 sweep.
const (
	PolicyERr    = experiments.PolicyERr
	PolicyAAS    = experiments.PolicyAAS
	PolicyAASR   = experiments.PolicyAASR
	PolicyOrigin = experiments.PolicyOrigin
)

// Result is one simulation outcome: slot- and round-level confusion
// matrices, completion breakdowns and node telemetry.
type Result = sim.Result

// SweepConfig controls the Fig. 4/5/Table I sweeps.
type SweepConfig = experiments.SweepConfig

// User identifies a synthetic subject; NewUser derives one deterministically.
type User = synth.User

// NewUser derives a subject from an id (0 = population average; other ids
// perturb gait and sensor mounting).
func NewUser(id int64) *User { return synth.NewUser(id) }

// BuildSystem trains (or loads from the on-disk cache) the full system for
// "MHEALTH" or "PAMAP2".
func BuildSystem(profile string) *System { return experiments.BuildSystem(profile) }

// RunPolicy executes one energy-harvesting run of the given variant over
// the Baseline-2 nets.
func RunPolicy(sys *System, o RunOpts) *Result { return experiments.RunPolicy(sys, o) }

// RunBaseline evaluates a fully-powered baseline ("B1" or "B2") with naive
// majority voting.
func RunBaseline(sys *System, kind string, slots int, seed int64) *Result {
	return experiments.RunBaselineSystem(sys, kind, slots, seed, nil, 0)
}

// Experiment drivers — one per table/figure in the paper's evaluation.
// Each returns a typed result whose String() prints the same rows/series
// the paper reports.
var (
	// RunFig1 reproduces the Fig. 1 completion breakdowns.
	RunFig1 = experiments.RunFig1
	// RunFig2 reproduces the per-sensor/ensemble accuracy table.
	RunFig2 = experiments.RunFig2
	// RunFig4 sweeps ER-r vs ER-r+AAS.
	RunFig4 = experiments.RunFig4
	// RunFig5 sweeps AAS/AASR/Origin against both baselines.
	RunFig5 = experiments.RunFig5
	// RunFig6 runs the unseen-user adaptation study.
	RunFig6 = experiments.RunFig6
	// RunTable1 compares RR12-Origin with both baselines per activity.
	RunTable1 = experiments.RunTable1
	// RunHeadline computes the abstract's Origin-vs-baseline claim.
	RunHeadline = experiments.RunHeadline
)

// Ablation drivers for the design choices DESIGN.md calls out.
var (
	// RunAblationNVP compares NVP against a volatile processor.
	RunAblationNVP = experiments.RunAblationNVP
	// RunAblationRecall isolates recall and aggregation contributions.
	RunAblationRecall = experiments.RunAblationRecall
	// RunAblationAdaptive freezes the confidence matrix for an unseen user.
	RunAblationAdaptive = experiments.RunAblationAdaptive
	// RunAblationWeighting compares the §III-C aggregation rules.
	RunAblationWeighting = experiments.RunAblationWeighting
	// RunAblationRRWidth sweeps Origin beyond RR12.
	RunAblationRRWidth = experiments.RunAblationRRWidth
	// RunAblationRecallDecay explores age-decayed recall weights.
	RunAblationRecallDecay = experiments.RunAblationRecallDecay
	// RunAblationComm stresses the wireless links with latency and loss.
	RunAblationComm = experiments.RunAblationComm
	// RunAblationPower compares EH-only, hybrid and battery-class supplies.
	RunAblationPower = experiments.RunAblationPower
	// RunAblationQuantization quantizes the deployed weights to a few bits.
	RunAblationQuantization = experiments.RunAblationQuantization
	// RunCentralized compares Origin with a centralized fusion DNN,
	// healthy and under sensor failure (the paper's Discussion).
	RunCentralized = experiments.RunCentralized
	// RunAblationCheckpoint compares NVP checkpoint granularities.
	RunAblationCheckpoint = experiments.RunAblationCheckpoint
	// RunAblationScheduling brackets AAS between Random and Oracle.
	RunAblationScheduling = experiments.RunAblationScheduling
	// RunExtendedNetwork scales the network to five sensors (footnote 1).
	RunExtendedNetwork = experiments.RunExtendedNetwork
	// RunBatteryLife quantifies battery-lifetime extension on hybrid nodes.
	RunBatteryLife = experiments.RunBatteryLife
	// RunAblationAdaptiveWidth compares fixed vs energy-adaptive pacing.
	RunAblationAdaptiveWidth = experiments.RunAblationAdaptiveWidth
)

// Serving layer (internal/fleet, internal/serve, cmd/origin-serve): the
// session-grade entry points. A ServeModel is the immutable population-level
// half of a deployment (trained nets, rank/accuracy tables, initial
// confidence matrix) shared read-only by every wearer; a ServeSession is one
// wearer's mutable host-side state (recall store + adaptively-updated
// confidence matrix). Sessions are deterministic: a session's classification
// sequence depends only on the order of its own Classify calls, so serially
// replaying a request stream reproduces a served session bit-for-bit — the
// contract the fleet replay tests pin.
type (
	// ServeModel is the shared, read-only model registry entry.
	ServeModel = fleet.Model
	// ServeSession is one wearer's serving session.
	ServeSession = fleet.Session
	// ServeOpts are the per-session knobs (stale limit, quorum, freeze).
	ServeOpts = fleet.Opts
	// SensorInput is one sensor's fresh data entering a serving round:
	// either a raw IMU window or a precomputed softmax vote.
	SensorInput = fleet.SensorInput
	// ServeResult is one serving round's fused classification.
	ServeResult = fleet.ClassifyResult
)

// NewServeModel wraps a trained System for serving. The System must not be
// mutated afterwards; sessions clone every mutable artefact out of it.
func NewServeModel(profile string, sys *System) *ServeModel {
	return fleet.NewModel(profile, sys)
}

// OpenSession opens a standalone serving session over a model — the same
// state machine cmd/origin-serve hosts per user, usable directly for
// single-wearer embedding and for deterministic replay.
func OpenSession(m *ServeModel, id string, user int64, o ServeOpts) (*ServeSession, error) {
	return fleet.NewSession(id, user, m, o)
}

// Trace is a harvested-power time series (watts at a fixed tick).
type Trace = energy.Trace

// GenerateTrace synthesises the calibrated office-WiFi harvesting trace
// used by all experiments: durationS seconds at 10 ms resolution.
func GenerateTrace(durationS float64, seed int64) *Trace {
	return experiments.ExperimentTrace(durationS, seed)
}

// LoadTraceCSV reads a "time_s,power_w" trace file, so recorded traces can
// replace the synthetic one.
func LoadTraceCSV(path string) (*Trace, error) { return energy.LoadCSVFile(path) }

package origin

// This file holds one benchmark per table and figure of the paper's
// evaluation (plus the ablations), so that
//
//	go test -bench=. -benchmem
//
// regenerates every result. Each benchmark prints its experiment's table on
// the first iteration and reports the headline scalar as a custom metric,
// so the bench log doubles as the reproduction artefact. Benchmarks use
// shortened (but still statistically meaningful) stream lengths; the
// cmd/origin-experiments binary runs the full-length versions.

import (
	"testing"

	"origin/internal/experiments"
)

func benchSystem(b *testing.B) *experiments.System {
	b.Helper()
	return experiments.BuildSystem("MHEALTH")
}

var benchSweep = experiments.SweepConfig{Slots: 4000, Seeds: []int64{3, 17}}

// BenchmarkFig1a regenerates the naive-concurrent completion breakdown
// (paper: 1% all / 9% ≥1 / 90% failed).
func BenchmarkFig1a(b *testing.B) {
	sys := benchSystem(b)
	for i := 0; i < b.N; i++ {
		r := experiments.RunFig1(sys, experiments.Fig1Config{Slots: 3000, Seed: 1})
		if i == 0 {
			b.Logf("\n%s", r)
			b.ReportMetric(100*r.NaiveAtLeastOne, "naive-atleast1-%")
		}
	}
}

// BenchmarkFig1b regenerates the RR3 completion breakdown (paper: 28/72).
func BenchmarkFig1b(b *testing.B) {
	sys := benchSystem(b)
	for i := 0; i < b.N; i++ {
		r := experiments.RunFig1(sys, experiments.Fig1Config{Slots: 3000, Seed: 1})
		if i == 0 {
			b.ReportMetric(100*r.RR3Succeeded, "rr3-succeeded-%")
		}
	}
}

// BenchmarkFig2 regenerates the per-sensor / majority-vote accuracy table.
func BenchmarkFig2(b *testing.B) {
	sys := benchSystem(b)
	for i := 0; i < b.N; i++ {
		r := experiments.RunFig2(sys, experiments.Fig2Config{WindowsPerClass: 120, Seed: 1})
		if i == 0 {
			b.Logf("\n%s", r)
		}
	}
}

// BenchmarkFig4 regenerates the ER-r vs AAS sweep.
func BenchmarkFig4(b *testing.B) {
	sys := benchSystem(b)
	for i := 0; i < b.N; i++ {
		r := experiments.RunFig4(sys, benchSweep)
		if i == 0 {
			b.Logf("\n%s", r)
		}
	}
}

// BenchmarkFig5a regenerates the MHEALTH policy sweep vs baselines.
func BenchmarkFig5a(b *testing.B) {
	sys := benchSystem(b)
	for i := 0; i < b.N; i++ {
		r := experiments.RunFig5(sys, benchSweep)
		if i == 0 {
			b.Logf("\n%s", r)
			b.ReportMetric(100*r.Cell(12, experiments.PolicyOrigin).Overall, "rr12-origin-%")
			b.ReportMetric(100*r.B2Overall, "bl2-%")
		}
	}
}

// BenchmarkFig5b regenerates the PAMAP2 policy sweep vs baselines.
func BenchmarkFig5b(b *testing.B) {
	sys := experiments.BuildSystem("PAMAP2")
	for i := 0; i < b.N; i++ {
		r := experiments.RunFig5(sys, benchSweep)
		if i == 0 {
			b.Logf("\n%s", r)
			b.ReportMetric(100*r.Cell(12, experiments.PolicyOrigin).Overall, "rr12-origin-%")
			b.ReportMetric(100*r.B2Overall, "bl2-%")
		}
	}
}

// BenchmarkFig6 regenerates the unseen-user adaptation curves (shortened to
// 300 iterations; the paper's full 1000 runs in cmd/origin-experiments).
func BenchmarkFig6(b *testing.B) {
	sys := benchSystem(b)
	for i := 0; i < b.N; i++ {
		r := experiments.RunFig6(sys, experiments.Fig6Config{Iterations: 300})
		if i == 0 {
			b.Logf("\n%s", r)
			b.ReportMetric(100*r.Base, "base-%")
		}
	}
}

// BenchmarkTable1 regenerates the RR12-Origin vs baselines comparison.
func BenchmarkTable1(b *testing.B) {
	sys := benchSystem(b)
	for i := 0; i < b.N; i++ {
		r := experiments.RunTable1(sys, benchSweep)
		if i == 0 {
			b.Logf("\n%s", r)
			b.ReportMetric(100*(r.OriginOverall-r.BL2Overall), "origin-vs-bl2-points")
		}
	}
}

// BenchmarkHeadline regenerates the abstract's claim (paper: 83.88% vs
// 81.16%, ≥ +2.5 points).
func BenchmarkHeadline(b *testing.B) {
	sys := benchSystem(b)
	for i := 0; i < b.N; i++ {
		r := experiments.RunHeadline(sys, benchSweep)
		if i == 0 {
			b.Logf("\n%s", r)
			b.ReportMetric(r.Advantage, "advantage-points")
		}
	}
}

// BenchmarkAblationNVP quantifies checkpointed forward progress.
func BenchmarkAblationNVP(b *testing.B) {
	sys := benchSystem(b)
	for i := 0; i < b.N; i++ {
		a := experiments.RunAblationNVP(sys, 4000, 3)
		if i == 0 {
			b.Logf("\n%s", a)
		}
	}
}

// BenchmarkAblationRecall isolates recall and aggregation.
func BenchmarkAblationRecall(b *testing.B) {
	sys := benchSystem(b)
	for i := 0; i < b.N; i++ {
		a := experiments.RunAblationRecall(sys, 4000, 3)
		if i == 0 {
			b.Logf("\n%s", a)
		}
	}
}

// BenchmarkAblationAdaptive freezes the confidence matrix for an unseen user.
func BenchmarkAblationAdaptive(b *testing.B) {
	sys := benchSystem(b)
	for i := 0; i < b.N; i++ {
		a := experiments.RunAblationAdaptive(sys, 8000, 3)
		if i == 0 {
			b.Logf("\n%s", a)
		}
	}
}

// BenchmarkAblationWeighting compares the §III-C aggregation rules.
func BenchmarkAblationWeighting(b *testing.B) {
	sys := benchSystem(b)
	for i := 0; i < b.N; i++ {
		a := experiments.RunAblationWeighting(sys, 4000, 3)
		if i == 0 {
			b.Logf("\n%s", a)
		}
	}
}

// BenchmarkAblationRRWidth sweeps Origin beyond RR12.
func BenchmarkAblationRRWidth(b *testing.B) {
	sys := benchSystem(b)
	for i := 0; i < b.N; i++ {
		a := experiments.RunAblationRRWidth(sys, 2400, 3)
		if i == 0 {
			b.Logf("\n%s", a)
		}
	}
}

// BenchmarkAblationRecallDecay explores age-decayed recall weights.
func BenchmarkAblationRecallDecay(b *testing.B) {
	sys := benchSystem(b)
	for i := 0; i < b.N; i++ {
		a := experiments.RunAblationRecallDecay(sys, 4000, 3)
		if i == 0 {
			b.Logf("\n%s", a)
		}
	}
}

// BenchmarkAblationComm stresses the wireless links.
func BenchmarkAblationComm(b *testing.B) {
	sys := benchSystem(b)
	for i := 0; i < b.N; i++ {
		a := experiments.RunAblationComm(sys, 4000, 3)
		if i == 0 {
			b.Logf("\n%s", a)
		}
	}
}

// BenchmarkAblationPower compares EH-only, hybrid and battery supplies.
func BenchmarkAblationPower(b *testing.B) {
	sys := benchSystem(b)
	for i := 0; i < b.N; i++ {
		a := experiments.RunAblationPower(sys, 4000, 3)
		if i == 0 {
			b.Logf("\n%s", a)
		}
	}
}

// BenchmarkAblationQuantization quantizes the deployed weights.
func BenchmarkAblationQuantization(b *testing.B) {
	sys := benchSystem(b)
	for i := 0; i < b.N; i++ {
		a := experiments.RunAblationQuantization(sys, 4000, 3)
		if i == 0 {
			b.Logf("\n%s", a)
		}
	}
}

// BenchmarkCentralized compares Origin with the centralized fusion DNN
// (the Discussion's failure-robustness argument).
func BenchmarkCentralized(b *testing.B) {
	sys := benchSystem(b)
	for i := 0; i < b.N; i++ {
		r := experiments.RunCentralized(sys, 4000, 3)
		if i == 0 {
			b.Logf("\n%s", r)
			b.ReportMetric(100*(r.OriginFailed-r.CentralFailed), "failure-margin-points")
		}
	}
}

// BenchmarkAblationCheckpoint compares NVP checkpoint granularities.
func BenchmarkAblationCheckpoint(b *testing.B) {
	sys := benchSystem(b)
	for i := 0; i < b.N; i++ {
		a := experiments.RunAblationCheckpoint(sys, 4000, 3)
		if i == 0 {
			b.Logf("\n%s", a)
		}
	}
}

// BenchmarkAblationScheduling brackets AAS between Random and Oracle.
func BenchmarkAblationScheduling(b *testing.B) {
	sys := benchSystem(b)
	for i := 0; i < b.N; i++ {
		a := experiments.RunAblationScheduling(sys, 4000, 3)
		if i == 0 {
			b.Logf("\n%s", a)
		}
	}
}

// BenchmarkExtendedNetwork scales the body-area network to five sensors
// (the paper's footnote 1 extension) at matched inference duty.
func BenchmarkExtendedNetwork(b *testing.B) {
	sys := benchSystem(b)
	for i := 0; i < b.N; i++ {
		r := experiments.RunExtendedNetwork(sys, 4000, 3)
		if i == 0 {
			b.Logf("\n%s", r)
		}
	}
}

// BenchmarkBatteryLife quantifies the introduction's battery-life claim on
// hybrid nodes.
func BenchmarkBatteryLife(b *testing.B) {
	sys := benchSystem(b)
	for i := 0; i < b.N; i++ {
		r := experiments.RunBatteryLife(sys, 4000, 3)
		if i == 0 {
			b.Logf("\n%s", r)
			b.ReportMetric(r.LifetimeFactor, "lifetime-x")
		}
	}
}

// BenchmarkAblationAdaptiveWidth compares fixed RR12 with energy-adaptive
// pacing on scarce and rich supplies (§IV's closing remark).
func BenchmarkAblationAdaptiveWidth(b *testing.B) {
	sys := benchSystem(b)
	for i := 0; i < b.N; i++ {
		a := experiments.RunAblationAdaptiveWidth(sys, 4000, 3)
		if i == 0 {
			b.Logf("\n%s", a)
		}
	}
}

GO ?= go

.PHONY: build test bench verify-obs verify-fault verify-serve fuzz-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

bench:
	$(GO) test -bench=. -benchmem

# Focused verification for the telemetry/concurrency layers: vet everything,
# then race-test the packages the run telemetry and worker pool touch.
verify-obs:
	$(GO) vet ./...
	$(GO) test -race ./internal/obs ./internal/sim ./internal/host

# Focused verification for the fault-injection/defense layers: vet
# everything, then race-test every package the injectors and defenses touch.
verify-fault:
	$(GO) vet ./...
	$(GO) test -race ./internal/comm ./internal/fault ./internal/host \
		./internal/schedule ./internal/sensor ./internal/sim ./internal/obs

# Focused verification for the serving stack: vet everything, then
# race-test the session manager, HTTP layer, load generator, and the
# shared-state packages they clone from (ensemble matrix, telemetry).
verify-serve:
	$(GO) vet ./...
	$(GO) test -race ./internal/fleet ./internal/serve ./internal/loadgen \
		./internal/ensemble ./internal/obs

# Short fuzz pass over the wire codec (go test allows one -fuzz target per
# invocation, so the two decoders run back to back).
fuzz-smoke:
	$(GO) test -fuzz=FuzzDecodeResult -fuzztime=5s ./internal/comm
	$(GO) test -fuzz=FuzzDecodeActivation -fuzztime=5s ./internal/comm

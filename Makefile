GO ?= go

.PHONY: build test bench bench-forward verify-bench verify-obs verify-fault verify-serve fuzz-smoke lint

BENCH_FORWARD = -run '^$$' -bench 'BenchmarkForward|BenchmarkKernelReference' \
	-benchtime 1s -count 5 . ./internal/tensor

build:
	$(GO) build ./...

test:
	$(GO) test ./...

bench:
	$(GO) test -bench=. -benchmem

# Re-record the committed forward-throughput baseline: single-window vs
# micro-batched inference (float and int8) plus the frozen kernel anchor
# benchmark that cmd/benchdiff normalises against across machines.
bench-forward:
	$(GO) test $(BENCH_FORWARD) | tee /tmp/bench_forward.txt
	$(GO) run ./cmd/benchdiff extract -o BENCH_forward.json /tmp/bench_forward.txt

# Benchmark-regression gate (run by the bench-regression CI job): re-run the
# forward benchmarks, diff against the committed baseline (anchor-relative,
# 15% threshold, report in bench_diff.txt), then enforce the per-window
# speedup bars at batch 16: >=2x for the float batched path and >=3x for the
# int8 hot path, both against the float single-window baseline.
verify-bench:
	$(GO) test $(BENCH_FORWARD) > /tmp/bench_forward_new.txt
	$(GO) run ./cmd/benchdiff extract -o /tmp/BENCH_forward_new.json /tmp/bench_forward_new.txt
	$(GO) run ./cmd/benchdiff compare -o bench_diff.txt BENCH_forward.json /tmp/BENCH_forward_new.json
	$(GO) run ./cmd/benchdiff verify -min 2.0 -min-int8 3.0 /tmp/BENCH_forward_new.json

# Formatting and static analysis, mirroring the CI lint job. staticcheck is
# optional locally (the CI job installs it); gofmt failures list the files.
lint:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
	else echo "staticcheck not installed; skipping (CI runs it)"; fi

# Focused verification for the telemetry/concurrency layers: vet everything,
# then race-test the packages the run telemetry and worker pool touch.
verify-obs:
	$(GO) vet ./...
	$(GO) test -race ./internal/obs ./internal/sim ./internal/host

# Focused verification for the fault-injection/defense layers: vet
# everything, then race-test every package the injectors and defenses touch.
verify-fault:
	$(GO) vet ./...
	$(GO) test -race ./internal/comm ./internal/fault ./internal/host \
		./internal/schedule ./internal/sensor ./internal/sim ./internal/obs

# Focused verification for the serving stack: vet everything, then
# race-test the session manager, HTTP layer, load generator, and the
# shared-state packages they clone from (ensemble matrix, telemetry).
verify-serve:
	$(GO) vet ./...
	$(GO) test -race ./internal/fleet ./internal/serve ./internal/loadgen \
		./internal/ensemble ./internal/obs

# Short fuzz pass over the wire codec (go test allows one -fuzz target per
# invocation, so the two decoders run back to back).
fuzz-smoke:
	$(GO) test -fuzz=FuzzDecodeResult -fuzztime=5s ./internal/comm
	$(GO) test -fuzz=FuzzDecodeActivation -fuzztime=5s ./internal/comm

GO ?= go

.PHONY: build test bench verify-obs

build:
	$(GO) build ./...

test:
	$(GO) test ./...

bench:
	$(GO) test -bench=. -benchmem

# Focused verification for the telemetry/concurrency layers: vet everything,
# then race-test the packages the run telemetry and worker pool touch.
verify-obs:
	$(GO) vet ./...
	$(GO) test -race ./internal/obs ./internal/sim ./internal/host

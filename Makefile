GO ?= go

# Recipes pipe gate output through tee into bench_diff.txt; without pipefail
# the pipe would swallow a failing gate's exit status.
SHELL = /bin/bash -o pipefail

.PHONY: build test coverage bench bench-forward bench-serve verify-bench verify-bench-serve verify-chaos verify-scenario verify-shard verify-obs verify-fault verify-serve fuzz-smoke lint

BENCH_FORWARD = -run '^$$' -bench 'BenchmarkForward|BenchmarkKernelReference' \
	-benchtime 1s -count 5 . ./internal/tensor

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Shuffled full-suite run with a coverage gate (run by the build-and-test CI
# job): -shuffle=on breaks hidden inter-test ordering dependencies, and total
# statement coverage must hold the recorded floor (79.2% measured when the
# floor was set; the slack absorbs run-to-run jitter from timing-dependent
# paths). The profile lands in coverage.out, which CI uploads as an artifact.
COVER_FLOOR = 75.0
coverage:
	$(GO) test -shuffle=on -coverprofile=coverage.out ./...
	@total=$$($(GO) tool cover -func=coverage.out | tail -n 1 | awk '{print $$3}' | tr -d '%'); \
	echo "total statement coverage: $$total% (floor $(COVER_FLOOR)%)"; \
	awk -v t="$$total" -v f="$(COVER_FLOOR)" 'BEGIN { exit (t+0 < f+0) ? 1 : 0 }' \
		|| { echo "coverage $$total% fell below the $(COVER_FLOOR)% floor"; exit 1; }

bench:
	$(GO) test -bench=. -benchmem

# Re-record the committed forward-throughput baseline: single-window vs
# micro-batched inference (float and int8) plus the frozen kernel anchor
# benchmark that cmd/benchdiff normalises against across machines.
bench-forward:
	$(GO) test $(BENCH_FORWARD) | tee /tmp/bench_forward.txt
	$(GO) run ./cmd/benchdiff extract -o BENCH_forward.json /tmp/bench_forward.txt

# Benchmark-regression gate (run by the bench-regression CI job): re-run the
# forward benchmarks, diff against the committed baseline (anchor-relative,
# 15% threshold, report in bench_diff.txt), then enforce the per-window
# speedup bars at batch 16: >=2x for the float batched path and >=3x for the
# int8 hot path, both against the float single-window baseline.
verify-bench:
	$(GO) test $(BENCH_FORWARD) > /tmp/bench_forward_new.txt
	$(GO) run ./cmd/benchdiff extract -o /tmp/BENCH_forward_new.json /tmp/bench_forward_new.txt
	$(GO) run ./cmd/benchdiff compare -o bench_diff.txt BENCH_forward.json /tmp/BENCH_forward_new.json
	$(GO) run ./cmd/benchdiff verify -min 2.0 -min-int8 3.0 /tmp/BENCH_forward_new.json

# Re-record the committed serve-side wire baseline: one loadgen report per
# payload mode (JSON votes, JSON windows, binary stream) over the same
# (users, requests, seed) grid, merged into BENCH_serve.json. Uses the real
# MHEALTH fleet; set ORIGIN_CACHE to reuse a warm model cache.
SERVE_GRID = -users 16 -requests 200 -seed 1
bench-serve:
	$(GO) run ./cmd/origin-loadgen $(SERVE_GRID) -mode votes -json /tmp/serve_votes.json
	$(GO) run ./cmd/origin-loadgen $(SERVE_GRID) -mode windows -json /tmp/serve_windows.json
	$(GO) run ./cmd/origin-loadgen $(SERVE_GRID) -mode stream -json /tmp/serve_stream.json
	$(GO) run ./cmd/benchdiff serve-extract -o BENCH_serve.json \
		/tmp/serve_votes.json /tmp/serve_windows.json /tmp/serve_stream.json
	$(GO) run ./cmd/benchdiff serve-verify BENCH_serve.json

# Serve wire-bytes gate (run by the bench-regression CI job): re-run the
# windows and stream loadgen grids on tiny deterministic models (fast; the
# wire format does not depend on model weights), then enforce >=10x fewer
# uplink bytes per classification than JSON windows at equal accuracy. The
# committed BENCH_serve.json is verified too, so the recorded real-model
# numbers cannot rot below the bar. Appends to the bench_diff.txt report
# that verify-bench starts.
verify-bench-serve:
	$(GO) run ./cmd/origin-loadgen $(SERVE_GRID) -tiny-model -mode windows -json /tmp/serve_windows_tiny.json
	$(GO) run ./cmd/origin-loadgen $(SERVE_GRID) -tiny-model -mode stream -json /tmp/serve_stream_tiny.json
	$(GO) run ./cmd/benchdiff serve-extract -o /tmp/BENCH_serve_tiny.json \
		/tmp/serve_windows_tiny.json /tmp/serve_stream_tiny.json
	$(GO) run ./cmd/benchdiff serve-verify /tmp/BENCH_serve_tiny.json | tee -a bench_diff.txt
	$(GO) run ./cmd/benchdiff serve-verify BENCH_serve.json | tee -a bench_diff.txt
	$(GO) test -race -run 'TestStreamLoadgenMatchesSerialReplay' ./internal/fleet

# Connection-chaos gate (run by the chaos-smoke CI job): drive the stream
# protocol through a fault-injecting listener that kills every connection
# after a seeded uplink-byte budget, under the race detector, then hold the
# report to the resilience bars — every round classified exactly once
# (no losses, no double-classifies), 100% resume success, >=99%
# availability. The -gap paces rounds like a real duty-cycled wearable:
# availability's denominator is wall time including idle, and a closed-loop
# flat-out drill has so little wall that ~30 reconnect handshakes alone
# would eat the 1% budget. The replay/resume regression tests ride along.
verify-chaos:
	$(GO) run -race ./cmd/origin-loadgen -users 8 -requests 80 -seed 1 -tiny-model \
		-mode stream -chaos -gap 90ms -json /tmp/chaos_report.json
	$(GO) run ./cmd/benchdiff chaos-verify /tmp/chaos_report.json | tee -a bench_diff.txt
	$(GO) test -race -run 'TestStreamChaos|TestStreamResume' ./internal/fleet ./internal/serve

# Scenario-SLO gate (run by the scenario-smoke CI job): run the built-in
# chaos day twice under -race on tiny deterministic models, hold the first
# report to the SLO bars (zero lost rounds, clean resume protocol, >=99%
# availability, bounded shed rate) and the pair to the determinism bar
# (byte-identical canonical sections across same-seed runs). The calm day
# then proves live ≡ serial-replay on the zero-fault path, and the scenario
# package's own acceptance tests ride along.
verify-scenario:
	$(GO) run -race ./cmd/origin-scenario -scenario day -seed 7 -tiny -o /tmp/slo_day.json
	$(GO) run -race ./cmd/origin-scenario -scenario day -seed 7 -tiny -o /tmp/slo_day_rerun.json
	$(GO) run ./cmd/benchdiff slo-verify /tmp/slo_day.json /tmp/slo_day_rerun.json | tee -a bench_diff.txt
	$(GO) run -race ./cmd/origin-scenario -scenario calm -seed 7 -tiny -verify-replay -o /dev/null
	$(GO) test -race ./internal/scenario

# Shard gate (run by the shard-smoke CI job): the built-in shard day — a
# mid-run replica crash plus a mid-run join over a 3-replica cluster behind
# the consistent-hash router, every lineage on the binary stream front —
# twice under -race with the first run also replay-verified (every lineage's
# classification sequence byte-identical to single-node serial execution).
# benchdiff then holds the pair to the sharding bars: zero lost rounds, zero
# double classifications, 100% migrated-session resume, at least one
# kill/join/migration actually fired, and byte-identical canonical sections
# across the same-seed runs. The cluster kill-drill and session-migration
# regression tests ride along.
verify-shard:
	$(GO) run -race ./cmd/origin-scenario -scenario shard -seed 13 -replicas 3 -tiny -verify-replay -o /tmp/slo_shard.json
	$(GO) run -race ./cmd/origin-scenario -scenario shard -seed 13 -replicas 3 -tiny -o /tmp/slo_shard_rerun.json
	$(GO) run ./cmd/benchdiff shard-verify /tmp/slo_shard.json /tmp/slo_shard_rerun.json | tee -a bench_diff.txt
	$(GO) test -race ./internal/cluster
	$(GO) test -race -run 'TestShard|TestStreamStoreResume|TestStreamAttachment|TestManagerMigration|TestSessionCodec|TestStateStore' \
		./internal/scenario ./internal/serve ./internal/fleet

# Formatting and static analysis, mirroring the CI lint job. staticcheck is
# optional locally (the CI job installs it); gofmt failures list the files.
lint:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
	else echo "staticcheck not installed; skipping (CI runs it)"; fi

# Focused verification for the telemetry/concurrency layers: vet everything,
# then race-test the packages the run telemetry and worker pool touch.
verify-obs:
	$(GO) vet ./...
	$(GO) test -race ./internal/obs ./internal/sim ./internal/host

# Focused verification for the fault-injection/defense layers: vet
# everything, then race-test every package the injectors and defenses touch.
verify-fault:
	$(GO) vet ./...
	$(GO) test -race ./internal/comm ./internal/fault ./internal/host \
		./internal/schedule ./internal/sensor ./internal/sim ./internal/obs

# Focused verification for the serving stack: vet everything, then
# race-test the session manager, HTTP layer, load generator, and the
# shared-state packages they clone from (ensemble matrix, telemetry).
verify-serve:
	$(GO) vet ./...
	$(GO) test -race ./internal/fleet ./internal/serve ./internal/loadgen \
		./internal/ensemble ./internal/obs

# Short fuzz pass over the wire codec (go test allows one -fuzz target per
# invocation, so the decoders run back to back). Covers the fixed-size uplink
# records and the variable-length stream frames.
fuzz-smoke:
	$(GO) test -fuzz=FuzzDecodeResult -fuzztime=5s ./internal/comm
	$(GO) test -fuzz=FuzzDecodeActivation -fuzztime=5s ./internal/comm
	$(GO) test -fuzz=FuzzDecodeStreamFrame -fuzztime=5s ./internal/comm
	$(GO) test -fuzz=FuzzIMURoundTrip -fuzztime=5s ./internal/comm

module origin

go 1.22

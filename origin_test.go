package origin

import (
	"os"
	"path/filepath"
	"testing"
)

// The facade tests exercise the public API end to end — what a downstream
// user of the library actually calls.

func TestFacadeEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("system training in -short mode")
	}
	sys := BuildSystem("MHEALTH")
	res := RunPolicy(sys, RunOpts{Width: 12, Kind: PolicyOrigin, Slots: 2000, Seed: 3})
	if res.RoundAccuracy() <= 0.4 {
		t.Fatalf("Origin accuracy = %v implausibly low", res.RoundAccuracy())
	}
	base := RunBaseline(sys, "B2", 2000, 3)
	if base.RoundAccuracy() <= 0.4 {
		t.Fatalf("baseline accuracy = %v implausibly low", base.RoundAccuracy())
	}
	if res.Slots != 2000 || base.Slots != 2000 {
		t.Fatalf("slots = %d/%d", res.Slots, base.Slots)
	}
}

func TestFacadeUsers(t *testing.T) {
	u0 := NewUser(0)
	u1 := NewUser(1)
	if u0 == nil || u1 == nil {
		t.Fatal("NewUser returned nil")
	}
	s0, n0 := u0.MountQuality(0)
	if s0 != 1 || n0 != 0 {
		t.Fatalf("population user mount = %v/%v, want perfect", s0, n0)
	}
}

func TestFacadeTrace(t *testing.T) {
	tr := GenerateTrace(30, 5)
	if tr.Len() != 3000 {
		t.Fatalf("trace length = %d", tr.Len())
	}
	if tr.Mean() <= 0 {
		t.Fatal("trace mean should be positive")
	}
	path := filepath.Join(t.TempDir(), "trace.csv")
	if err := tr.SaveCSVFile(path); err != nil {
		t.Fatalf("SaveCSVFile: %v", err)
	}
	back, err := LoadTraceCSV(path)
	if err != nil {
		t.Fatalf("LoadTraceCSV: %v", err)
	}
	if back.Len() != tr.Len() {
		t.Fatalf("round trip length %d != %d", back.Len(), tr.Len())
	}
}

func TestFacadePolicyKinds(t *testing.T) {
	if PolicyOrigin.String() != "Origin" || PolicyERr.String() != "ER-r" {
		t.Fatal("policy kind names wrong through the facade")
	}
}

func TestMain(m *testing.M) {
	// Keep the model cache shared with the experiments package tests.
	os.Exit(m.Run())
}
